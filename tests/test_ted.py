"""Tests for Zhang–Shasha tree edit distance."""

import random

import pytest

from repro.ptree import (
    OrderedTree,
    PTree,
    Taxonomy,
    normalized_ptree_similarity,
    ptree_to_ordered,
    tree_edit_distance,
)


def t(label, *children):
    return OrderedTree(label, list(children))


class TestOrderedTree:
    def test_size(self):
        tree = t("a", t("b"), t("c", t("d")))
        assert tree.size() == 4

    def test_add(self):
        tree = OrderedTree("a")
        child = tree.add(OrderedTree("b"))
        assert tree.children == [child]


class TestTEDBasics:
    def test_identical_trees(self):
        tree = t("a", t("b"), t("c"))
        assert tree_edit_distance(tree, tree) == 0.0

    def test_empty_vs_empty(self):
        assert tree_edit_distance(None, None) == 0.0

    def test_empty_vs_tree_is_size(self):
        tree = t("a", t("b"), t("c"))
        assert tree_edit_distance(None, tree) == 3.0
        assert tree_edit_distance(tree, None) == 3.0

    def test_single_relabel(self):
        assert tree_edit_distance(t("a"), t("b")) == 1.0

    def test_single_insert(self):
        assert tree_edit_distance(t("a"), t("a", t("b"))) == 1.0

    def test_classic_zhang_shasha_example(self):
        # f(d(a, c(b)), e)  vs  f(c(d(a, b)), e)  -> distance 2
        t1 = t("f", t("d", t("a"), t("c", t("b"))), t("e"))
        t2 = t("f", t("c", t("d", t("a"), t("b"))), t("e"))
        assert tree_edit_distance(t1, t2) == 2.0

    def test_order_matters(self):
        t1 = t("r", t("a"), t("b"))
        t2 = t("r", t("b"), t("a"))
        assert tree_edit_distance(t1, t2) == 2.0


class TestMetricAxioms:
    def random_tree(self, rng, size):
        nodes = [OrderedTree(rng.choice("abcd"))]
        for _ in range(size - 1):
            parent = rng.choice(nodes)
            child = OrderedTree(rng.choice("abcd"))
            parent.children.append(child)
            nodes.append(child)
        return nodes[0]

    def test_symmetry(self):
        rng = random.Random(0)
        for _ in range(15):
            t1 = self.random_tree(rng, rng.randint(1, 7))
            t2 = self.random_tree(rng, rng.randint(1, 7))
            assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)

    def test_identity(self):
        rng = random.Random(1)
        for _ in range(10):
            tree = self.random_tree(rng, rng.randint(1, 8))
            assert tree_edit_distance(tree, tree) == 0.0

    def test_triangle_inequality(self):
        rng = random.Random(2)
        for _ in range(15):
            a = self.random_tree(rng, rng.randint(1, 6))
            b = self.random_tree(rng, rng.randint(1, 6))
            c = self.random_tree(rng, rng.randint(1, 6))
            ab = tree_edit_distance(a, b)
            bc = tree_edit_distance(b, c)
            ac = tree_edit_distance(a, c)
            assert ac <= ab + bc + 1e-9

    def test_bounded_by_sum_of_sizes(self):
        rng = random.Random(3)
        for _ in range(10):
            a = self.random_tree(rng, rng.randint(1, 6))
            b = self.random_tree(rng, rng.randint(1, 6))
            assert tree_edit_distance(a, b) <= a.size() + b.size()


class TestPTreeIntegration:
    @pytest.fixture
    def tax(self):
        tax = Taxonomy()
        a = tax.add("a")
        tax.add("b")
        tax.add("c", parent=a)
        return tax

    def test_ptree_conversion(self, tax):
        p = PTree.from_names(tax, ["c", "b"])
        tree = ptree_to_ordered(p)
        assert tree.label == "r"
        assert tree.size() == 4

    def test_empty_ptree_converts_to_none(self, tax):
        assert ptree_to_ordered(PTree.empty(tax)) is None

    def test_ptree_ted_subset(self, tax):
        p1 = PTree.from_names(tax, ["c", "b"])
        p2 = PTree.from_names(tax, ["b"])
        # removing a and c costs 2 deletions
        assert tree_edit_distance(p1, p2) == 2.0

    def test_normalized_similarity_range(self, tax):
        p1 = PTree.from_names(tax, ["c"])
        p2 = PTree.from_names(tax, ["b"])
        sim = normalized_ptree_similarity(p1, p2)
        assert 0.0 <= sim <= 1.0

    def test_normalized_similarity_identical(self, tax):
        p = PTree.from_names(tax, ["c", "b"])
        assert normalized_ptree_similarity(p, p) == 1.0

    def test_normalized_similarity_empty(self, tax):
        e = PTree.empty(tax)
        assert normalized_ptree_similarity(e, e) == 1.0
        p = PTree.from_names(tax, ["b"])
        assert normalized_ptree_similarity(e, p) == 0.0
