"""Crash-recovery gauntlet: kill -9 a durable server, reboot, compare.

The CI ``durability`` job runs exactly this module. Each test drives a
real ``repro serve --data-dir`` subprocess over HTTP:

* stream acknowledged single-update batches at it,
* ``SIGKILL`` it mid-stream (no drain, no snapshot — the WAL is the only
  survivor),
* restart on the same data directory,
* assert the recovered ``graph_version`` equals the last version the
  dead server *acknowledged*, and that query answers match a shadow
  :class:`~repro.api.CommunityService` that applied the same updates
  in-process (ground truth by construction).

A second scenario interleaves a clean SIGINT shutdown (which checkpoints
a snapshot) before the kill, so recovery exercises snapshot *plus* WAL
replay rather than WAL-only replay.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import CommunityService, Query
from repro.datasets import fig1_profiled_graph
from repro.server import ServerClient

ROOT = Path(__file__).resolve().parents[1]

#: Single-update batches streamed at the server before it is killed.
#: fig1 vertices are letters, labels are taxonomy names; every batch is
#: effective (bumps the version exactly once) so acked versions are 1..N.
UPDATE_STREAM = [
    {"op": "add_vertex", "u": "Z1", "labels": ["ML", "DMS"]},
    {"op": "add_edge", "u": "Z1", "v": "A"},
    {"op": "add_edge", "u": "Z1", "v": "B"},
    {"op": "add_vertex", "u": "Z2", "labels": ["AI"]},
    {"op": "add_edge", "u": "Z2", "v": "Z1"},
    {"op": "set_profile", "u": "Z2", "labels": ["IS", "HW"]},
    {"op": "remove_edge", "u": "A", "v": "B"},
    {"op": "add_edge", "u": "Z2", "v": "C"},
]

#: Queries whose answers must survive the crash byte-for-byte.
PROBES = [Query(vertex="D", k=2), Query(vertex="Z1", k=1), Query(vertex="A", k=1)]


def _start_server(data_dir: Path):
    """Launch ``repro serve --data-dir`` and return ``(proc, port)``."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dataset", "fig1",
         "--port", "0", "--data-dir", str(data_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=ROOT,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    banner = proc.stdout.readline()
    assert "serving fig1 at http://127.0.0.1:" in banner, banner
    port = int(banner.split("http://127.0.0.1:")[1].split()[0].rstrip(")"))
    return proc, port


def _answers(client: ServerClient):
    """Stable answer signature for every probe query."""
    out = []
    for probe in PROBES:
        resp = client.query(probe)
        out.append(
            (resp.matched,
             sorted((tuple(sorted(c.vertices, key=repr)), c.theme)
                    for c in resp.communities))
        )
    return out


def _shadow_answers(updates):
    """Ground truth: the same updates applied to an in-process service."""
    with CommunityService(fig1_profiled_graph()) as shadow:
        if updates:
            shadow.apply_updates(updates)
        version = shadow.pg.version
        answers = []
        for probe in PROBES:
            resp = shadow.query(probe)
            answers.append(
                (resp.matched,
                 sorted((tuple(sorted(c.vertices, key=repr)), c.theme)
                        for c in resp.communities))
            )
    return version, answers


def _kill_dash_nine(proc):
    """SIGKILL and reap; the process must not get a chance to clean up."""
    proc.kill()
    proc.communicate(timeout=30)
    assert proc.returncode != 0  # died hard, no graceful exit path


def _shutdown_clean(proc):
    proc.send_signal(signal.SIGINT)
    # Read through the text wrappers, not communicate(): the banner
    # readline in _start_server may have pulled later startup lines
    # (endpoints, boot provenance) into the wrapper's buffer, and
    # communicate() reads the raw descriptors only — it would silently
    # drop exactly the lines the boot-provenance assertions need.
    out = proc.stdout.read()
    err = proc.stderr.read()
    proc.wait(timeout=30)
    assert proc.returncode == 0, err
    return out, err


@pytest.mark.durability
class TestKillNineRecovery:
    """The durability gauntlet proper."""

    def test_wal_only_recovery_after_sigkill(self, tmp_path):
        data_dir = tmp_path / "data"
        proc, port = _start_server(data_dir)
        acked = 0
        try:
            with ServerClient("127.0.0.1", port) as client:
                for i, update in enumerate(UPDATE_STREAM, start=1):
                    receipt = client.update([update])
                    assert receipt["graph_version"] == i
                    acked = receipt["graph_version"]
        finally:
            _kill_dash_nine(proc)

        # No snapshot was ever written: recovery is pure WAL replay.
        assert not (data_dir / "snapshot.bin").exists()
        assert (data_dir / "wal.log").stat().st_size > 0

        expected_version, expected = _shadow_answers(UPDATE_STREAM)
        assert expected_version == acked

        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                health = client.healthz()
                assert health["graph_version"] == acked
                assert health["durable"] is True
                assert _answers(client) == expected
        finally:
            out, _ = _shutdown_clean(proc)
        assert f"booted from cold at graph version {acked}" in out
        assert f"replayed {len(UPDATE_STREAM)} WAL record(s)" in out

    def test_snapshot_plus_wal_recovery(self, tmp_path):
        data_dir = tmp_path / "data"
        half = len(UPDATE_STREAM) // 2

        # Round 1: apply the first half, then shut down cleanly. The
        # drain checkpoints a snapshot and truncates the WAL.
        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                for update in UPDATE_STREAM[:half]:
                    client.update([update])
        finally:
            _shutdown_clean(proc)
        assert (data_dir / "snapshot.bin").exists()
        assert (data_dir / "wal.log").stat().st_size == 0

        # Round 2: apply the second half, then kill -9 mid-flight.
        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                assert client.healthz()["graph_version"] == half
                for update in UPDATE_STREAM[half:]:
                    client.update([update])
        finally:
            _kill_dash_nine(proc)

        # Round 3: recovery = snapshot (first half) + WAL (second half).
        expected_version, expected = _shadow_answers(UPDATE_STREAM)
        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                health = client.healthz()
                assert health["graph_version"] == expected_version
                assert _answers(client) == expected
                stats = client.stats()
                assert stats["storage"]["boot"]["source"] == "snapshot"
                assert stats["storage"]["boot"]["snapshot_version"] == half
                assert stats["storage"]["boot"]["replayed_records"] == \
                    len(UPDATE_STREAM) - half
        finally:
            out, _ = _shutdown_clean(proc)
        assert f"booted from snapshot at graph version {expected_version}" in out

    def test_recovery_is_idempotent(self, tmp_path):
        """Crashing the *recovered* server immediately loses nothing."""
        data_dir = tmp_path / "data"
        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                client.update([UPDATE_STREAM[0]])
        finally:
            _kill_dash_nine(proc)

        for _ in range(2):  # recover, crash again without writing, recover
            proc, port = _start_server(data_dir)
            try:
                with ServerClient("127.0.0.1", port) as client:
                    assert client.healthz()["graph_version"] == 1
            finally:
                _kill_dash_nine(proc)

        expected_version, expected = _shadow_answers(UPDATE_STREAM[:1])
        proc, port = _start_server(data_dir)
        try:
            with ServerClient("127.0.0.1", port) as client:
                assert client.healthz()["graph_version"] == expected_version
                assert _answers(client) == expected
        finally:
            _shutdown_clean(proc)
