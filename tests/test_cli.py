"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestQuery:
    def test_fig1_query(self, capsys):
        assert main(["query", "--dataset", "fig1", "--query", "D", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 communities" in out
        assert "PC1" in out and "PC2" in out

    def test_fig1_query_each_method(self, capsys):
        for method in ("basic", "incre", "adv-I", "adv-D", "adv-P"):
            assert main(
                ["query", "--dataset", "fig1", "--query", "D", "--k", "2", "--method", method]
            ) == 0

    def test_auto_query_selection(self, capsys):
        assert main(["query", "--dataset", "fig1", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "picked" in out

    def test_int_vertex_coercion(self, capsys, tmp_path):
        from repro.datasets import save_profiled_graph, simple_profiled_graph
        from repro.datasets.taxonomies import synthetic_taxonomy

        tax = synthetic_taxonomy(30, seed=1)
        pg = simple_profiled_graph(tax, 20, seed=1, edge_probability=0.4)
        path = tmp_path / "g.json"
        save_profiled_graph(pg, path)
        assert main(["query", "--dataset", str(path), "--query", "3", "--k", "1"]) == 0


class TestStats:
    def test_fig1_stats(self, capsys):
        assert main(["stats", "--dataset", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "vertices     : 8" in out
        assert "|GP-tree|    : 7" in out


class TestExport:
    def test_export_and_requery(self, capsys, tmp_path):
        out_path = tmp_path / "fig1.json"
        assert main(["export", "--dataset", "fig1", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert main(["query", "--dataset", str(out_path), "--query", "D", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 communities" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["query", "--method", "warp"])
