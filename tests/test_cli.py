"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestQuery:
    def test_fig1_query(self, capsys):
        assert main(["query", "--dataset", "fig1", "--query", "D", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 communities" in out
        assert "PC1" in out and "PC2" in out

    def test_fig1_query_each_method(self, capsys):
        for method in ("basic", "incre", "adv-I", "adv-D", "adv-P"):
            assert main(
                ["query", "--dataset", "fig1", "--query", "D", "--k", "2", "--method", method]
            ) == 0

    def test_auto_query_selection(self, capsys):
        assert main(["query", "--dataset", "fig1", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "picked" in out

    def test_json_envelope(self, capsys):
        assert main(
            ["query", "--dataset", "fig1", "--query", "D", "--k", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]["vertex"] == "D"
        assert payload["returned"] == 2
        assert payload["plan"]["planned"] is True
        from repro.api import QueryResponse

        restored = QueryResponse.from_dict(payload)
        assert restored.returned == 2

    def test_limit_and_min_size_flags(self, capsys):
        assert main(
            [
                "query", "--dataset", "fig1", "--query", "D", "--k", "2",
                "--json", "--limit", "1", "--min-size", "3",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["returned"] == 1
        assert payload["query"]["limit"] == 1
        assert payload["query"]["min_size"] == 3
        assert all(c["size"] >= 3 for c in payload["communities"])

    def test_limit_truncation_notice_in_text_mode(self, capsys):
        assert main(
            ["query", "--dataset", "fig1", "--query", "D", "--k", "2", "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "showing first 1 of 2" in out
        assert out.count("PC1") == 1 and "PC2" not in out

    def test_explicit_method_skips_the_planner(self, capsys):
        assert main(
            [
                "query", "--dataset", "fig1", "--query", "D", "--k", "2",
                "--method", "adv-P", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "adv-P"
        assert payload["plan"]["planned"] is False

    def test_int_vertex_coercion(self, capsys, tmp_path):
        from repro.datasets import save_profiled_graph, simple_profiled_graph
        from repro.datasets.taxonomies import synthetic_taxonomy

        tax = synthetic_taxonomy(30, seed=1)
        pg = simple_profiled_graph(tax, 20, seed=1, edge_probability=0.4)
        path = tmp_path / "g.json"
        save_profiled_graph(pg, path)
        assert main(["query", "--dataset", str(path), "--query", "3", "--k", "1"]) == 0


class TestStats:
    def test_fig1_stats(self, capsys):
        assert main(["stats", "--dataset", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "vertices     : 8" in out
        assert "|GP-tree|    : 7" in out


class TestExport:
    def test_export_and_requery(self, capsys, tmp_path):
        out_path = tmp_path / "fig1.json"
        assert main(["export", "--dataset", "fig1", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert main(["query", "--dataset", str(out_path), "--query", "D", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 communities" in out


class TestBatch:
    def _write_queries(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_batch_stdout_json(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, "D\nE\nD\n")
        assert main(
            ["batch", "--dataset", "fig1", "--queries", queries, "--k", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_queries"] == 3
        assert [r["query"]["vertex"] for r in payload["results"]] == ["D", "E", "D"]
        assert payload["results"][0]["returned"] == 2
        # The duplicate D is deduplicated inside the batch.
        assert payload["engine"]["queries_served"] == 2
        assert payload["engine"]["index_builds"] == 1

    def test_batch_mixed_spec_file(self, capsys, tmp_path):
        queries = self._write_queries(
            tmp_path, 'D\n{"q": "E", "k": 1, "method": "basic"}\n'
        )
        assert main(
            ["batch", "--dataset", "fig1", "--queries", queries, "--k", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][1]["k"] == 1
        assert payload["results"][1]["method"] == "basic"

    def test_batch_respects_per_query_post_filters(self, capsys, tmp_path):
        queries = self._write_queries(
            tmp_path, '{"vertex": "D", "k": 2, "limit": 1, "min_size": 2}\n'
        )
        assert main(
            ["batch", "--dataset", "fig1", "--queries", queries, "--k", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        result = payload["results"][0]
        assert result["returned"] == 1 and result["truncated"] is True
        assert result["matched"] == 2

    def test_batch_rejects_typo_keys(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, '{"q": "D", "methud": "basic"}\n')
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError, match="methud"):
            main(["batch", "--dataset", "fig1", "--queries", queries])

    def test_batch_service_limit_flag(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, "D\n")
        assert main(
            [
                "batch", "--dataset", "fig1", "--queries", queries,
                "--k", "2", "--limit", "1",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["returned"] == 1

    def test_batch_to_file(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, "D\n")
        out = tmp_path / "results.json"
        assert main(
            [
                "batch", "--dataset", "fig1", "--queries", queries,
                "--k", "2", "--out", str(out),
            ]
        ) == 0
        assert json.loads(out.read_text())["num_queries"] == 1

    def test_batch_empty_file_fails(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, "# nothing here\n")
        assert main(
            ["batch", "--dataset", "fig1", "--queries", queries]
        ) == 1

    def test_batch_with_workers(self, capsys, tmp_path):
        queries = self._write_queries(tmp_path, "D\nE\nA\n")
        assert main(
            [
                "batch", "--dataset", "fig1", "--queries", queries,
                "--k", "2", "--workers", "2",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["query"]["vertex"] for r in payload["results"]] == ["D", "E", "A"]


class TestUpdate:
    def edits(self, tmp_path, text):
        path = tmp_path / "edits.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_update_applies_and_reports(self, capsys, tmp_path):
        edits = self.edits(
            tmp_path,
            "# warm-up edits\n"
            "remove-edge C D\n"
            "add-edge A C\n"
            "set-profile E ML,AI\n"
            "add-vertex Z ML\n"
            "add-edge Z B\n",
        )
        out = tmp_path / "update.json"
        assert main(
            [
                "update", "--dataset", "fig1", "--edits", edits,
                "--query", "D", "--k", "2", "--out", str(out),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "edits applied      : 5/5" in text
        assert "cache invalidations: 1" in text
        payload = json.loads(out.read_text())
        assert payload["receipt"]["applied"] == 5
        assert payload["receipt"]["repaired_labels"] > 0
        assert payload["engine"]["graph_version"] == 5
        assert payload["query"]["returned"] >= 1
        assert payload["query"]["graph_version"] == 5

    def test_update_removed_query_vertex(self, capsys, tmp_path):
        edits = self.edits(tmp_path, "remove-vertex D\n")
        out = tmp_path / "update.json"
        assert main(
            [
                "update", "--dataset", "fig1", "--edits", edits,
                "--query", "D", "--k", "2", "--out", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["query"]["error"] == "vertex removed"

    def test_update_empty_file_fails(self, capsys, tmp_path):
        edits = self.edits(tmp_path, "# nothing\n")
        assert main(["update", "--dataset", "fig1", "--edits", edits]) == 1
        assert "no edits" in capsys.readouterr().err

    def test_update_requires_edits_file(self):
        with pytest.raises(SystemExit):
            main(["update", "--dataset", "fig1"])


class TestBenchEngine:
    def test_bench_engine_fig1(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(
            [
                "bench-engine", "--dataset", "fig1", "--k", "2",
                "--num-queries", "3", "--repeat", "2", "--out", str(out),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "speedup (cold/warm)" in text
        payload = json.loads(out.read_text())
        assert payload["throughput"]["queries"] == 6
        assert payload["throughput"]["cache_hits"] > 0

    def test_bench_engine_facade_overhead(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(
            [
                "bench-engine", "--dataset", "fig1", "--k", "2",
                "--num-queries", "3", "--repeat", "2", "--facade",
                "--out", str(out),
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "facade (service)" in text
        payload = json.loads(out.read_text())
        facade = payload["facade_overhead"]
        assert facade["engine"]["queries"] == facade["service"]["queries"] == 6
        assert facade["service_ms_per_query"] > 0


class TestServe:
    """`repro serve` end to end: a subprocess server, a real client, SIGINT."""

    def test_serve_answers_and_drains_on_sigint(self):
        import signal
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--dataset", "fig1",
             "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=root,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(root / "src")},
        )
        try:
            banner = proc.stdout.readline()
            assert "serving fig1 at http://127.0.0.1:" in banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0].rstrip(")"))
            from repro.api import Query
            from repro.server import ServerClient

            with ServerClient("127.0.0.1", port) as client:
                assert client.healthz()["status"] == "ok"
                assert client.query(Query(vertex="D", k=2)).returned == 2
        finally:
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "served 1 queries" in out

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 8437
        assert args.coalesce_window == 0.005
        assert args.no_coalesce is False
        assert args.max_queue == 256
        assert args.func.__name__ == "cmd_serve"

    def test_serve_rejects_bad_parallel(self):
        with pytest.raises(SystemExit):
            main(["serve", "--parallel", "not-a-number"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["query", "--method", "warp"])

    def test_batch_requires_query_file(self):
        with pytest.raises(SystemExit):
            main(["batch", "--dataset", "fig1"])
