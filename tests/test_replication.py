"""Tests for the replication tier (`repro.replication`), in-process.

Layered like the package: the frame codec with no transport at all,
:class:`~repro.storage.wal.WalCursor` semantics against a real log
file, then a live tier — :class:`WriterGateway`, :class:`ReplicaGateway`
and :class:`ReplicationRouter` over real sockets in one process —
exercising the consistency contract: routed reads equal direct service
answers, read-your-writes via ``X-Repro-Min-Version``, the bounded
``min_version`` deadline (503), the 307 write redirect off replicas,
and a checkpoint-forced resync. Subprocess failure injection (kill -9)
lives in ``tests/test_cluster.py``.
"""

import io
import struct
import time
from contextlib import contextmanager

import pytest

from repro.api import CommunityService, Query
from repro.datasets import fig1_profiled_graph
from repro.errors import InvalidInputError
from repro.replication import (
    FrameError,
    FrameReader,
    HEARTBEAT,
    HELLO,
    RECORD,
    ReplicaGateway,
    ReplicationRouter,
    WriterGateway,
    decode_frame,
    encode_frame,
    record_frame,
    record_from_frame,
)
from repro.server import ServerClient, ServerError
from repro.storage import WalRecord, WriteAheadLog

#: Label-free updates are valid against any dataset's taxonomy.
UPDATES = [
    {"op": "add_vertex", "u": "R1"},
    {"op": "add_edge", "u": "R1", "v": "A"},
    {"op": "add_edge", "u": "R1", "v": "B"},
]

PROBE = Query(vertex="A", k=2)


def _wait_until(predicate, timeout=15.0, interval=0.02, what="condition"):
    """Poll ``predicate`` until truthy; fail loudly on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def _url(gateway) -> str:
    host, port = gateway.address
    return f"http://{host}:{port}"


def envelope(response):
    payload = response.to_dict()
    payload.pop("elapsed_ms", None)
    return payload


# ----------------------------------------------------------------------
# frame codec (no transport)
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_round_trip(self):
        payload = {"type": HELLO, "version": 7, "nested": {"a": [1, 2]}}
        assert decode_frame(encode_frame(payload)) == payload

    def test_crc_mismatch_raises(self):
        raw = bytearray(encode_frame({"type": HEARTBEAT, "version": 1}))
        raw[-1] ^= 0xFF  # flip a payload byte; the CRC no longer matches
        with pytest.raises(FrameError):
            decode_frame(bytes(raw))

    def test_truncated_frame_raises(self):
        raw = encode_frame({"type": HEARTBEAT, "version": 1})
        with pytest.raises(FrameError):
            decode_frame(raw[: len(raw) - 2])

    def test_record_frame_round_trip(self):
        record = WalRecord(3, 5, UPDATES[:2])
        frame = decode_frame(record_frame(record))
        assert frame["type"] == RECORD
        rebuilt = record_from_frame(frame)
        assert rebuilt.base == 3
        assert rebuilt.version == 5
        assert [u.to_dict() for u in rebuilt.updates] == [
            u.to_dict() for u in record.updates
        ]

    def test_reader_yields_frames_then_none_at_clean_eof(self):
        frames = [{"type": HELLO, "version": 1}, {"type": HEARTBEAT, "version": 2}]
        stream = io.BytesIO(b"".join(encode_frame(f) for f in frames))
        reader = FrameReader(stream)
        assert list(reader.frames()) == frames
        assert reader.frame() is None

    def test_reader_raises_on_mid_frame_eof(self):
        raw = encode_frame({"type": HELLO, "version": 1})
        reader = FrameReader(io.BytesIO(raw[: len(raw) - 3]))
        with pytest.raises(FrameError):
            reader.frame()

    def test_reader_rejects_absurd_length_header(self):
        # A length prefix far past the frame cap must fail fast, not
        # attempt a gigabyte read.
        bogus = struct.pack("<II", 1 << 30, 0)
        with pytest.raises(FrameError):
            FrameReader(io.BytesIO(bogus + b"x" * 16)).frame()


# ----------------------------------------------------------------------
# WAL cursor (real log file, no sockets)
# ----------------------------------------------------------------------
class TestWalCursor:
    def _log_with(self, tmp_path, n):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for version in range(1, n + 1):
            wal.append(version - 1, version, [{"op": "add_vertex", "u": f"V{version}"}])
        return wal

    def test_pending_drains_only_newer_records(self, tmp_path):
        wal = self._log_with(tmp_path, 3)
        assert [r.version for r in wal.cursor(0).pending()] == [1, 2, 3]
        assert [r.version for r in wal.cursor(2).pending()] == [3]
        cursor = wal.cursor(0)
        cursor.pending()
        assert cursor.pending() == []
        assert cursor.after_version == 3

    def test_wait_wakes_on_append(self, tmp_path):
        wal = self._log_with(tmp_path, 1)
        cursor = wal.cursor(0)
        cursor.pending()
        assert cursor.wait(0.05) is False  # nothing new: times out
        wal.append(1, 2, [{"op": "add_vertex", "u": "W"}])
        assert cursor.wait(5.0) is True
        assert [r.version for r in cursor.pending()] == [2]

    def test_truncation_behind_cursor_flags_lost_history(self, tmp_path):
        wal = self._log_with(tmp_path, 3)
        cursor = wal.cursor(0)  # never drained: still needs versions 1..3
        wal.truncate()
        wal.append(3, 4, [{"op": "add_vertex", "u": "X"}])
        assert cursor.pending() == []
        assert cursor.lost_history is True

    def test_caught_up_cursor_survives_truncation(self, tmp_path):
        wal = self._log_with(tmp_path, 3)
        cursor = wal.cursor(0)
        cursor.pending()  # drained to 3 before the checkpoint
        wal.truncate()
        wal.append(3, 4, [{"op": "add_vertex", "u": "X"}])
        assert [r.version for r in cursor.pending()] == [4]
        assert cursor.lost_history is False


# ----------------------------------------------------------------------
# live in-process tier
# ----------------------------------------------------------------------
@contextmanager
def replication_tier(tmp_path, replicas=1, min_version_deadline=5.0):
    """Writer + N replicas + router, all in-process, torn down afterwards."""
    service = CommunityService(
        fig1_profiled_graph(), storage_dir=tmp_path / "writer"
    )
    writer = WriterGateway(service, heartbeat_interval=0.1, port=0)
    writer.start()
    reps = []
    router = None
    try:
        for index in range(replicas):
            rep = ReplicaGateway(
                _url(writer),
                tmp_path / f"replica-{index}",
                reconnect_backoff=0.05,
                port=0,
            )
            rep.start()
            reps.append(rep)
        router = ReplicationRouter(
            _url(writer),
            [_url(r) for r in reps],
            min_version_deadline=min_version_deadline,
            health_interval=0.05,
        )
        router.start()
        yield writer, reps, router
    finally:
        if router is not None:
            router.close()
        for rep in reps:
            rep.close()
        writer.close()


class TestInProcessTier:
    def test_routed_read_matches_direct_answer(self, tmp_path):
        with replication_tier(tmp_path) as (writer, _reps, router):
            expected = envelope(writer.service.query(PROBE))
            with ServerClient(*router.address) as client:
                got = envelope(client.query(PROBE))
            assert got == expected

    def test_write_then_read_your_writes(self, tmp_path):
        with replication_tier(tmp_path) as (_writer, reps, router):
            with ServerClient(*router.address) as client:
                receipt = client.update(UPDATES)
                version = receipt["graph_version"]
                assert version >= len(UPDATES)
                # min_version forces the router to wait for a caught-up
                # replica (or fall back to the writer) — the answer must
                # reflect the write it acknowledged.
                response = client.query(PROBE, min_version=version)
                assert response.graph_version >= version
            _wait_until(
                lambda: reps[0].service.pg.version >= version,
                what="replica catch-up",
            )
            counters = router.counters
            assert counters["writes_proxied"] >= 1
            assert counters["reads_proxied"] >= 1
            assert router.last_write_version == version

    def test_min_version_past_deadline_is_503(self, tmp_path):
        with replication_tier(tmp_path, min_version_deadline=0.3) as tier:
            _writer, _reps, router = tier
            with ServerClient(*router.address) as client:
                with pytest.raises(ServerError) as err:
                    client.query(PROBE, min_version=10_000)
            assert err.value.status == 503
            assert err.value.error_type == "min_version_deadline"
            assert err.value.retry_after is not None
            assert router.counters["deadline_exceeded"] >= 1

    def test_write_to_replica_redirects_307(self, tmp_path):
        with replication_tier(tmp_path) as (writer, reps, _router):
            with ServerClient(*reps[0].address) as client:
                with pytest.raises(ServerError) as err:
                    client.update(UPDATES)
            assert err.value.status == 307
            assert err.value.location == f"{_url(writer)}/update"
            # The redirect is advice, not a silent replay: nothing applied.
            assert writer.service.pg.version == 0

    def test_health_surfaces_replication_vitals(self, tmp_path):
        with replication_tier(tmp_path) as (writer, reps, router):
            with ServerClient(*reps[0].address) as replica_client:
                _wait_until(
                    lambda: replica_client.healthz()["replication"]["connected"],
                    what="replica stream connection",
                )
                vitals = replica_client.healthz()["replication"]
            assert vitals["writer_url"] == _url(writer)
            assert vitals["lag_versions"] == 0
            assert vitals["resyncs"] == 0
            with ServerClient(*writer.address) as writer_client:
                _wait_until(
                    lambda: writer_client.healthz()["replication"]["subscribers"] == 1,
                    what="writer subscriber count",
                )
            health = router.health()
            assert health["role"] == "router"
            assert health["writer"]["url"] == _url(writer)
            assert len(health["replicas"]) == 1
            stats = router.stats()
            assert stats["server"]["role"] == "router"
            assert set(stats["server"]["counters"]) == set(router.counters)

    def test_router_rejects_unknown_paths_and_methods(self, tmp_path):
        with replication_tier(tmp_path) as (_writer, _reps, router):
            with ServerClient(*router.address) as client:
                with pytest.raises(ServerError) as missing:
                    client._request("POST", "/nope", {})
                with pytest.raises(ServerError) as wrong_verb:
                    client._request("GET", "/query")
            assert missing.value.status == 404
            assert wrong_verb.value.status == 405

    def test_replica_resyncs_after_writer_checkpoint(self, tmp_path):
        service = CommunityService(
            fig1_profiled_graph(), storage_dir=tmp_path / "writer"
        )
        writer = WriterGateway(service, heartbeat_interval=0.1, port=0)
        writer.start()
        try:
            replica_dir = tmp_path / "replica"
            first = ReplicaGateway(
                _url(writer), replica_dir, reconnect_backoff=0.05, port=0
            )
            first.start()
            service.apply_updates(UPDATES[:1])
            _wait_until(
                lambda: first.service.pg.version == 1, what="initial catch-up"
            )
            first.close()
            # While the replica is down: advance past its position, then
            # checkpoint — the WAL records it still needs are truncated
            # away, so on reboot the stream must answer "resync".
            service.apply_updates(UPDATES[1:])
            service.snapshot()
            service.apply_updates([{"op": "add_vertex", "u": "R9"}])
            second = ReplicaGateway(
                _url(writer), replica_dir, reconnect_backoff=0.05, port=0
            )
            second.start()
            try:
                target = service.pg.version
                _wait_until(
                    lambda: second.service.pg.version == target,
                    what="post-resync catch-up",
                )
                with ServerClient(*second.address) as client:
                    vitals = client.healthz()["replication"]
                assert vitals["resyncs"] == 1
                # Still streaming after the resync: new writes arrive.
                service.apply_updates([{"op": "add_vertex", "u": "R10"}])
                _wait_until(
                    lambda: second.service.pg.version == target + 1,
                    what="post-resync streaming",
                )
            finally:
                second.close()
        finally:
            writer.close()

    def test_writer_requires_durable_service(self, tmp_path):
        with CommunityService(fig1_profiled_graph()) as memory_only:
            with pytest.raises(InvalidInputError):
                WriterGateway(memory_only)

    def test_router_requires_replicas(self):
        with pytest.raises(InvalidInputError):
            ReplicationRouter("http://127.0.0.1:9", [])
