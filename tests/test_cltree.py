"""Tests for the CL-tree index (nested k-ĉores)."""

import random

import pytest

from repro.datasets import fig1_profiled_graph
from repro.graph import Graph, connected_k_core, gnp_graph
from repro.index import CLTree


class TestFig4Shape:
    """The CL-tree of the paper's example graph must match Fig. 4(b)."""

    def test_structure(self):
        pg = fig1_profiled_graph()
        clt = CLTree(pg.graph)
        root = clt.root
        assert root.core == -1  # virtual root "0:#"
        assert sorted(len(c.vertices) for c in root.children) == [1, 3]
        by_size = sorted(root.children, key=lambda n: len(n.vertices))
        c_node, fgh_node = by_size
        assert set(c_node.vertices) == {"C"}
        assert c_node.core == 2
        assert set(fgh_node.vertices) == {"F", "G", "H"}
        assert fgh_node.core == 2
        (abde_node,) = c_node.children
        assert set(abde_node.vertices) == {"A", "B", "D", "E"}
        assert abde_node.core == 3

    def test_vertex_node_map(self):
        pg = fig1_profiled_graph()
        clt = CLTree(pg.graph)
        assert clt.node_of("C").core == 2
        assert clt.node_of("A").core == 3
        assert clt.node_of("missing") is None

    def test_kcore_queries(self):
        pg = fig1_profiled_graph()
        clt = CLTree(pg.graph)
        assert clt.kcore_vertices("D", 3) == frozenset("ABDE")
        assert clt.kcore_vertices("D", 2) == frozenset("ABCDE")
        assert clt.kcore_vertices("F", 2) == frozenset("FGH")
        assert clt.kcore_vertices("F", 3) == frozenset()
        # k=0 must NOT leak across disconnected components via the virtual root
        assert clt.kcore_vertices("F", 0) == frozenset("FGH")


class TestAgainstDirectComputation:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        g = gnp_graph(45, 0.12, seed=seed)
        clt = CLTree(g)
        for q in range(0, 45, 5):
            for k in range(0, 6):
                assert clt.kcore_vertices(q, k) == connected_k_core(g, q, k)

    @pytest.mark.parametrize("seed", range(4))
    def test_restricted_subgraphs(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(40, 0.18, seed=seed)
        selection = set(rng.sample(range(40), 24))
        clt = CLTree(g, vertices=selection)
        sub = g.subgraph(selection)
        for q in list(selection)[:8]:
            for k in range(0, 5):
                assert clt.kcore_vertices(q, k) == connected_k_core(sub, q, k)


class TestStructuralInvariants:
    def test_each_vertex_anchored_once(self):
        g = gnp_graph(60, 0.1, seed=42)
        clt = CLTree(g)
        seen = []
        for node in clt.nodes():
            seen.extend(node.vertices)
        assert len(seen) == len(set(seen)) == g.num_vertices

    def test_cores_strictly_increase_downward(self):
        g = gnp_graph(60, 0.15, seed=43)
        clt = CLTree(g)
        for node in clt.nodes():
            for child in node.children:
                assert child.core > node.core

    def test_anchored_vertices_have_node_core(self):
        g = gnp_graph(50, 0.15, seed=44)
        clt = CLTree(g)
        for node in clt.nodes():
            for v in node.vertices:
                assert clt.core_number(v) == node.core

    def test_empty_graph(self):
        clt = CLTree(Graph())
        assert clt.num_vertices == 0
        assert clt.kcore_vertices(0, 0) == frozenset()

    def test_subtree_vertices_cached_slices(self):
        g = gnp_graph(30, 0.2, seed=45)
        clt = CLTree(g)
        root_vertices = clt.subtree_vertices(clt.root)
        assert root_vertices == g.vertex_set()
        # repeated call returns the same frozenset object (cache hit)
        assert clt.subtree_vertices(clt.root) is root_vertices
