"""Tests for k-core decomposition (repro.graph.core)."""

import random

import pytest

from repro.errors import InvalidInputError
from repro.graph import (
    Graph,
    connected_k_core,
    core_numbers,
    degeneracy,
    gnp_graph,
    k_core_subgraph,
    k_core_vertices,
    k_core_within,
    minimum_degree,
    ring_of_cliques,
)
from repro.graph.core import core_numbers_within


def naive_k_core(graph: Graph, k: int) -> frozenset:
    """Reference implementation: repeatedly drop min-degree vertices."""
    alive = set(graph.vertices())
    changed = True
    while changed:
        changed = False
        for v in list(alive):
            deg = sum(1 for u in graph.neighbors(v) if u in alive)
            if deg < k:
                alive.discard(v)
                changed = True
    return frozenset(alive)


class TestCoreNumbers:
    def test_triangle_plus_tail(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        core = core_numbers(g)
        assert core == {0: 2, 1: 2, 2: 2, 3: 1}

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_isolated_vertices_core_zero(self):
        g = Graph()
        g.add_vertices([1, 2])
        assert core_numbers(g) == {1: 0, 2: 0}

    def test_clique_core(self):
        g = ring_of_cliques(1, 5)
        core = core_numbers(g)
        assert all(c == 4 for c in core.values())

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_on_random_graphs(self, seed):
        g = gnp_graph(50, 0.1, seed=seed)
        core = core_numbers(g)
        for k in range(0, 6):
            expected = naive_k_core(g, k)
            got = frozenset(v for v, c in core.items() if c >= k)
            assert got == expected

    def test_nestedness(self):
        g = gnp_graph(80, 0.12, seed=3)
        cores = [k_core_vertices(g, k) for k in range(6)]
        for smaller, larger_k in zip(cores, cores[1:]):
            assert larger_k <= smaller


class TestKCoreExtraction:
    def test_negative_k_rejected(self):
        with pytest.raises(InvalidInputError):
            k_core_vertices(Graph(), -1)

    def test_k_core_subgraph_min_degree(self):
        g = gnp_graph(60, 0.15, seed=11)
        sub = k_core_subgraph(g, 3)
        if sub.num_vertices:
            assert minimum_degree(sub) >= 3

    def test_connected_k_core_is_component(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)])
        assert connected_k_core(g, 0, 2) == frozenset({0, 1, 2})
        assert connected_k_core(g, 4, 2) == frozenset({4, 5, 6})

    def test_connected_k_core_empty_when_peeled(self):
        g = Graph([(0, 1)])
        assert connected_k_core(g, 0, 2) == frozenset()

    def test_degeneracy(self):
        assert degeneracy(ring_of_cliques(3, 4)) == 3
        assert degeneracy(Graph()) == 0


class TestKCoreWithin:
    def test_restriction_changes_answer(self):
        g = ring_of_cliques(2, 4)  # two K4s joined by an edge
        full = k_core_within(g, g.vertices(), 3, q=0)
        assert full == frozenset(range(8))  # the bridge keeps them one 3-core
        restricted = k_core_within(g, [0, 1, 2], 3, q=0)
        assert restricted == frozenset()

    def test_q_not_candidate_returns_empty(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        assert k_core_within(g, [0, 1], 0, q=2) == frozenset()

    def test_without_q_returns_all_survivors(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)])
        survivors = k_core_within(g, g.vertices(), 2)
        assert survivors == frozenset({0, 1, 2, 5, 6, 7})

    def test_component_selection_with_q(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)])
        assert k_core_within(g, g.vertices(), 2, q=5) == frozenset({5, 6, 7})

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_subgraph_peel(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(40, 0.2, seed=seed)
        candidates = set(rng.sample(range(40), 25))
        sub = g.subgraph(candidates)
        for q in list(candidates)[:5]:
            for k in (1, 2, 3):
                expected = connected_k_core(sub, q, k)
                got = k_core_within(g, candidates, k, q=q)
                assert got == expected

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidInputError):
            k_core_within(Graph(), [], -2)


class TestCoreNumbersWithin:
    def test_matches_induced_subgraph(self):
        g = gnp_graph(50, 0.15, seed=9)
        selection = set(range(0, 50, 2))
        expected = core_numbers(g.subgraph(selection))
        got = core_numbers_within(g, selection)
        assert got == expected

    def test_empty_selection(self):
        g = gnp_graph(10, 0.3, seed=1)
        assert core_numbers_within(g, []) == {}


class TestMinimumDegree:
    def test_whole_graph(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert minimum_degree(g) == 1

    def test_restricted(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert minimum_degree(g, [0, 1, 2]) == 2

    def test_empty(self):
        assert minimum_degree(Graph()) == 0
        assert minimum_degree(Graph([(0, 1)]), []) == 0
