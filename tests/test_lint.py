"""Tests for :mod:`repro.lint` — framework, checkers, suppressions, CLI.

Each checker is proven twice: it catches the seeded violation in its
fixture under ``tests/data/lint/`` and stays silent on the clean twin.
The suite also locks the JSON schema, the suppression-justification
policy, and — the point of the exercise — that ``repro lint`` is clean
on ``src/repro`` itself.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import Checker, LintReport, checker_ids, run_lint
from repro.lint.checkers.layers import DEFAULT_LAYERS, LayerDagChecker
from repro.lint.registry import register
from repro.lint.suppress import parse_suppressions

DATA = Path(__file__).parent / "data" / "lint"
TREE = DATA / "tree"
REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

ALL_CHECKERS = (
    "api-hygiene",
    "docstring-coverage",
    "durability-protocol",
    "layer-dag",
    "lock-discipline",
    "version-tagging",
)


def lint_one(path: Path, checker: str) -> LintReport:
    """Run a single checker over one fixture file."""
    return run_lint([path], select=[checker], base=REPO)


def finding_lines(report: LintReport, checker: str):
    """Sorted line numbers of the report's findings for ``checker``."""
    return sorted(f.line for f in report.findings if f.checker == checker)


class TestLockDiscipline:
    def test_catches_seeded_violations(self):
        report = lint_one(DATA / "locks_bad.py", "lock-discipline")
        messages = [f.message for f in report.findings]
        assert len(report.findings) == 2
        assert any("self._count" in m for m in messages)  # unguarded read
        assert any("self._data" in m for m in messages)  # unguarded subscript write
        symbols = {f.symbol for f in report.findings}
        assert symbols == {"Counter.peek", "Counter.reset"}

    def test_silent_on_clean_twin(self):
        report = lint_one(DATA / "locks_clean.py", "lock-discipline")
        assert report.findings == []


class TestLayerDag:
    def test_catches_upward_import(self):
        report = lint_one(TREE / "repro" / "graph" / "upward.py", "layer-dag")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "repro.server" in finding.message
        assert finding.symbol == "repro.graph.upward"

    def test_silent_on_downward_and_lazy_imports(self):
        report = lint_one(TREE / "repro" / "server" / "downward.py", "layer-dag")
        assert report.findings == []

    def test_equal_rank_is_rejected(self):
        checker = LayerDagChecker(layers={"graph": 1, "ptree": 1})
        # Same-rank imports climb "its own layer" — construct via the
        # real fixture tree by giving graph and server equal ranks.
        checker = LayerDagChecker(layers={"graph": 2, "server": 2})
        report = run_lint(
            [TREE / "repro" / "graph" / "upward.py"], checkers=[checker], base=REPO
        )
        assert len(report.findings) == 1
        assert "its own layer" in report.findings[0].message

    def test_table_matches_reality(self):
        """Every package under src/repro has a rank (no silent gaps)."""
        top_level = {
            p.stem if p.is_file() else p.name
            for p in SRC.iterdir()
            if (p.is_dir() and (p / "__init__.py").exists())
            or (p.is_file() and p.suffix == ".py")
        }
        top_level -= {"__init__", "__main__"}
        missing = top_level - set(DEFAULT_LAYERS)
        assert not missing, f"packages without a layer rank: {sorted(missing)}"


class TestDurabilityProtocol:
    def test_catches_seeded_violations(self):
        report = lint_one(TREE / "repro" / "storage" / "bad_write.py", "durability-protocol")
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 4
        assert "not followed by" in messages  # naked open
        assert "preceding fsync" in messages  # replace, no fsync before
        assert "directory fsync" in messages  # replace, no fsync after
        assert "write_text" in messages  # Path helper

    def test_silent_on_clean_twin(self):
        report = lint_one(TREE / "repro" / "storage" / "clean_write.py", "durability-protocol")
        assert report.findings == []

    def test_out_of_scope_package_is_ignored(self):
        # The same shapes outside repro.storage are not this checker's
        # business (locks_bad.py is standalone: no package at all).
        report = lint_one(DATA / "locks_bad.py", "durability-protocol")
        assert report.findings == []


class TestVersionTagging:
    def test_catches_seeded_violation(self):
        report = lint_one(TREE / "repro" / "engine" / "bad_version.py", "version-tagging")
        assert len(report.findings) == 1
        assert report.findings[0].symbol == "Engine.answer"
        assert "unpinned read" in report.findings[0].message

    def test_silent_on_all_sanctioned_shapes(self):
        report = lint_one(TREE / "repro" / "engine" / "clean_version.py", "version-tagging")
        assert report.findings == []


class TestApiHygiene:
    def test_catches_seeded_violations(self):
        report = lint_one(DATA / "hygiene_bad.py", "api-hygiene")
        messages = " | ".join(f.message for f in report.findings)
        assert "'GHOST'" in messages  # exported but never defined
        assert "'PUBLIC_CONSTANT'" in messages  # defined but not exported
        assert "'swallow'" in messages  # also public-but-unlisted
        assert "mutable default" in messages
        assert messages.count("does not admit it") == 2  # int / List[str] = None
        assert "bare 'except:'" in messages
        assert "silently swallows" in messages
        assert len(report.findings) == 8

    def test_silent_on_clean_twin(self):
        report = lint_one(DATA / "hygiene_clean.py", "api-hygiene")
        assert report.findings == []


class TestDocstringCoverage:
    def test_catches_seeded_violations(self):
        report = lint_one(DATA / "docstrings_bad.py", "docstring-coverage")
        symbols = {f.symbol for f in report.findings}
        assert len(report.findings) == 3
        assert any(s.endswith("Undocumented") for s in symbols)
        assert any(s.endswith("Undocumented.method") for s in symbols)
        assert any(s.endswith("undocumented_function") for s in symbols)

    def test_silent_on_clean_twin(self):
        # __repr__ (non-init dunder) and hook (trivial override) exempt.
        report = lint_one(DATA / "docstrings_clean.py", "docstring-coverage")
        assert report.findings == []

    def test_wrapper_script_agrees(self):
        """scripts/check_docstrings.py delegates to the same rules."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_docstrings", REPO / "scripts" / "check_docstrings.py"
        )
        wrapper = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(wrapper)
        items = wrapper.collect()
        assert wrapper.coverage_percent(items) == 100.0
        report = run_lint([SRC], select=["docstring-coverage"], base=REPO)
        assert len(report.findings) == sum(1 for _, ok in items if not ok) == 0


class TestSuppressions:
    def test_the_five_behaviours(self):
        report = lint_one(DATA / "suppress_cases.py", "api-hygiene")
        # justified + justified_above: silenced.
        assert len(report.suppressed) == 2
        assert all(
            "fixture exercising" in s.justification for s in report.suppressed
        )
        # unjustified + wrong_id: the hygiene findings stay live...
        hygiene = [f for f in report.findings if f.checker == "api-hygiene"]
        assert {f.symbol for f in hygiene} == {"unjustified", "wrong_id"}
        # ...and the unjustified + stale entries are policy findings of
        # their own. The wrong-id entry names layer-dag, which did not
        # run here, so it is NOT judged stale under --select.
        policy = [f for f in report.findings if f.checker == "suppression"]
        assert len(policy) == 2
        assert any("without a justification" in f.message for f in policy)
        assert any("stale suppression" in f.message for f in policy)

    def test_unselected_checker_entries_become_stale_in_full_runs(self):
        # In a full run layer-dag is active, so the wrong-id entry IS
        # condemned as stale (3 policy findings, not 2).
        report = run_lint([DATA / "suppress_cases.py"], base=REPO)
        policy = [f for f in report.findings if f.checker == "suppression"]
        stale = [f for f in policy if "stale suppression" in f.message]
        assert len(policy) == 3
        assert len(stale) == 2
        assert any("layer-dag" in f.message for f in stale)

    def test_policy_findings_cannot_be_suppressed(self):
        source = (DATA / "suppress_cases.py").read_text(encoding="utf-8")
        entries = parse_suppressions(source)
        assert len(entries) == 5
        from repro.lint.findings import Finding
        from repro.lint.suppress import SuppressionIndex

        index = SuppressionIndex(source)
        policy_finding = Finding(
            checker="suppression", path="x.py", line=entries[0].line, message="m"
        )
        assert index.match(policy_finding) == ()

    def test_suppression_comment_parsing(self):
        entries = parse_suppressions(
            "x = 1  # repro-lint: disable=a-b,c -- two ids, one justification\n"
        )
        assert len(entries) == 1
        assert entries[0].ids == ("a-b", "c")
        assert entries[0].justification == "two ids, one justification"


class TestJsonSchema:
    def test_report_schema(self):
        report = lint_one(DATA / "hygiene_bad.py", "api-hygiene")
        doc = report.to_dict()
        assert doc["schema"] == "repro-lint/1"
        assert doc["files"] == 1
        assert doc["checkers"] == ["api-hygiene"]
        assert doc["summary"]["errors"] == len(doc["findings"]) > 0
        for finding in doc["findings"]:
            assert set(finding) == {
                "checker", "path", "line", "message", "severity", "symbol",
            }
            assert finding["severity"] in ("error", "warning")
            assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert json.loads(json.dumps(doc)) == doc  # round-trips

    def test_suppressed_entries_carry_justification(self):
        report = lint_one(DATA / "suppress_cases.py", "api-hygiene")
        doc = report.to_dict()
        assert doc["summary"]["suppressed"] == 2
        for entry in doc["suppressed"]:
            assert entry["justification"]


class TestRegistry:
    def test_all_six_checkers_registered(self):
        assert tuple(checker_ids()) == ALL_CHECKERS

    def test_duplicate_and_reserved_ids_rejected(self):
        class Dupe(Checker):
            id = "api-hygiene"

        with pytest.raises(ValueError, match="duplicate"):
            register(Dupe)

        class Reserved(Checker):
            id = "suppression"

        with pytest.raises(ValueError, match="reserved"):
            register(Reserved)

        class Anonymous(Checker):
            id = ""

        with pytest.raises(ValueError, match="no id"):
            register(Anonymous)


class TestSelfRun:
    """The acceptance gate: repro lint is clean on src/repro."""

    def test_src_repro_is_clean(self):
        report = run_lint([SRC], base=REPO)
        assert report.findings == [], report.render_text()
        assert report.exit_code() == 0
        assert list(report.checkers) == list(ALL_CHECKERS)
        assert report.files > 100

    def test_every_suppression_in_src_is_justified_and_used(self):
        report = run_lint([SRC], base=REPO)
        assert all(s.justification for s in report.suppressed)
        # Stale or unjustified entries would have surfaced as findings.
        assert not [f for f in report.findings if f.checker == "suppression"]


class TestCli:
    def test_lint_clean_exits_zero(self, capsys):
        assert cli_main(["lint", str(SRC)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_findings_exit_one_and_json_out(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        code = cli_main([
            "lint", str(DATA / "hygiene_bad.py"),
            "--select", "api-hygiene",
            "--format", "json",
            "--json-out", str(out),
        ])
        assert code == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["summary"]["errors"] == 8
        stdout_doc = json.loads(capsys.readouterr().out)
        assert stdout_doc == doc

    def test_lint_list(self, capsys):
        assert cli_main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for checker_id in ALL_CHECKERS:
            assert f"{checker_id}:" in out

    def test_unknown_checker_exits_two(self, capsys):
        assert cli_main(["lint", "--select", "no-such-checker", str(SRC)]) == 2
        assert "unknown checker" in capsys.readouterr().err


class TestDocs:
    def test_static_analysis_doc_covers_every_checker(self):
        doc = (REPO / "docs" / "static-analysis.md").read_text(encoding="utf-8")
        for checker_id in ALL_CHECKERS:
            assert checker_id in doc, f"docs/static-analysis.md misses {checker_id}"
        assert "repro-lint: disable=" in doc  # suppression policy documented

    def test_readme_mentions_lint(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "repro lint" in readme
