"""Hypothesis property tests for the core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import Graph, connected_k_core, core_numbers, k_core_vertices
from repro.index import CLTree
from repro.ptree import (
    PTree,
    Taxonomy,
    count_subtrees,
    enumerate_subtrees,
    lemma1_bound,
    normalized_ptree_similarity,
    tree_edit_distance,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
    max_size=40,
)


@st.composite
def taxonomies(draw, max_nodes: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    tax = Taxonomy()
    for i in range(1, n):
        tax.add(f"L{i}", parent=rng.randrange(i))
    return tax


@st.composite
def taxonomy_with_subsets(draw):
    tax = draw(taxonomies())
    picks = draw(
        st.lists(st.integers(0, tax.num_nodes - 1), max_size=6)
    )
    return tax, picks


# ----------------------------------------------------------------------
# graph properties
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists)
def test_core_numbers_vs_naive_peel(edges):
    g = Graph(edges)
    core = core_numbers(g)
    for k in range(0, 5):
        alive = set(g.vertices())
        changed = True
        while changed:
            changed = False
            for v in list(alive):
                if sum(1 for u in g.neighbors(v) if u in alive) < k:
                    alive.discard(v)
                    changed = True
        assert frozenset(v for v, c in core.items() if c >= k) == frozenset(alive)


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists, k=st.integers(0, 4))
def test_k_core_min_degree_invariant(edges, k):
    g = Graph(edges)
    vertices = k_core_vertices(g, k)
    for v in vertices:
        assert sum(1 for u in g.neighbors(v) if u in vertices) >= k


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(edges=edge_lists, q=st.integers(0, 14), k=st.integers(0, 4))
def test_cltree_matches_direct_k_core(edges, q, k):
    g = Graph(edges)
    if q not in g:
        g.add_vertex(q)
    clt = CLTree(g)
    assert clt.kcore_vertices(q, k) == connected_k_core(g, q, k)


# ----------------------------------------------------------------------
# P-tree properties
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=taxonomy_with_subsets())
def test_closure_is_idempotent_and_monotone(data):
    tax, picks = data
    closed = tax.closure(picks)
    assert tax.closure(closed) == closed
    assert set(picks) <= closed
    assert tax.is_ancestor_closed(closed)


@settings(max_examples=60, deadline=None)
@given(data=taxonomy_with_subsets(), data2=st.data())
def test_union_intersection_preserve_closure(data, data2):
    tax, picks = data
    picks2 = data2.draw(st.lists(st.integers(0, tax.num_nodes - 1), max_size=6))
    a = PTree.from_nodes(tax, picks)
    b = PTree.from_nodes(tax, picks2)
    assert tax.is_ancestor_closed((a | b).nodes)
    assert tax.is_ancestor_closed((a & b).nodes)
    # lattice laws
    assert (a & b) <= a and (a & b) <= b
    assert a <= (a | b) and b <= (a | b)


@settings(max_examples=40, deadline=None)
@given(tax=taxonomies(max_nodes=8))
def test_enumeration_matches_dp_count_and_bound(tax):
    base = PTree.from_nodes(tax, list(tax.nodes()))
    subtrees = list(enumerate_subtrees(base))
    assert len(subtrees) == len(set(subtrees)) == count_subtrees(base)
    assert len(subtrees) <= lemma1_bound(len(base))


@settings(max_examples=40, deadline=None)
@given(data=taxonomy_with_subsets(), data2=st.data())
def test_ted_is_metric_like_on_ptrees(data, data2):
    tax, picks = data
    picks2 = data2.draw(st.lists(st.integers(0, tax.num_nodes - 1), max_size=6))
    a = PTree.from_nodes(tax, picks)
    b = PTree.from_nodes(tax, picks2)
    dist_ab = tree_edit_distance(a, b)
    assert dist_ab == tree_edit_distance(b, a)
    assert (dist_ab == 0) == (a == b)
    # normalised similarity stays in [0, 1]
    sim = normalized_ptree_similarity(a, b)
    assert 0.0 <= sim <= 1.0


@settings(max_examples=40, deadline=None)
@given(data=taxonomy_with_subsets())
def test_subset_ted_equals_size_difference(data):
    # Deleting the extra nodes is optimal when one tree contains the other.
    tax, picks = data
    big = PTree.from_nodes(tax, picks)
    small = PTree.root_only(tax) if big else PTree.empty(tax)
    assert tree_edit_distance(big, small) == abs(len(big) - len(small))
