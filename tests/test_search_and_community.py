"""Tests for the search dispatcher, result containers and apriori internals."""

import pytest

from repro.core import (
    ALL_METHODS,
    FeasibilityOracle,
    PCS_METHODS,
    ProfiledCommunity,
    TraversalOutcome,
    apriori_traverse,
    pcs,
)
from repro.datasets import fig1_profiled_graph
from repro.ptree.taxonomy import ROOT


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestMethodRegistry:
    def test_paper_methods(self):
        assert PCS_METHODS == ("basic", "incre", "adv-I", "adv-D", "adv-P")

    def test_all_methods_superset(self):
        assert set(PCS_METHODS) < set(ALL_METHODS)
        assert "closed" in ALL_METHODS

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_dispatches(self, pg, method):
        result = pcs(pg, "D", 2, method=method)
        assert len(result) == 2

    def test_method_case_insensitive(self, pg):
        assert len(pcs(pg, "D", 2, method="ADV-P")) == 2
        assert len(pcs(pg, "D", 2, method="Closed")) == 2


class TestProfiledCommunity:
    def test_fields_and_protocol(self, pg):
        community = pcs(pg, "D", 2)[0]
        assert isinstance(community, ProfiledCommunity)
        assert community.query == "D"
        assert community.k == 2
        assert "D" in community
        assert community.size == len(community.vertices)
        assert isinstance(community.theme(), frozenset)

    def test_frozen(self, pg):
        community = pcs(pg, "D", 2)[0]
        with pytest.raises(AttributeError):
            community.k = 9


class TestPCSResult:
    def test_container_protocol(self, pg):
        result = pcs(pg, "D", 2)
        assert len(result) == 2
        assert bool(result)
        assert result[0] in list(result)
        assert len(result.subtrees()) == 2
        assert len(result.vertex_sets()) == 2

    def test_empty_result_falsy(self, pg):
        result = pcs(pg, "D", 4)
        assert not result
        assert result.summary().startswith("PCS(")

    def test_sort_deterministic(self, pg):
        a = pcs(pg, "D", 2)
        b = pcs(pg, "D", 2, method="basic")
        assert [c.vertices for c in a] == [c.vertices for c in b]


class TestAprioriTraverse:
    def test_outcome_type(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        outcome = apriori_traverse(oracle)
        assert isinstance(outcome, TraversalOutcome)
        assert len(outcome.maximal) == 2
        assert outcome.first_cut is None  # not requested

    def test_stop_at_first(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        outcome = apriori_traverse(oracle, stop_at_first_maximal=True)
        assert len(outcome.maximal) == 1
        assert outcome.first_cut is not None

    def test_infeasible_root(self, pg):
        oracle = FeasibilityOracle(pg, "D", 4, index=pg.index())
        outcome = apriori_traverse(oracle)
        assert outcome.maximal == {}

    def test_every_maximal_contains_root(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        outcome = apriori_traverse(oracle)
        for subtree in outcome.maximal:
            assert ROOT in subtree


class TestAlivePruning:
    def test_dead_labels_removed_from_base(self, pg):
        # At k=3 only {r} is feasible from D: every other label of T(D) is
        # dead except those with 3-core support.
        oracle = FeasibilityOracle(pg, "D", 3, index=pg.index())
        full = pg.labels("D")
        assert oracle.base_nodes <= full
        assert ROOT in oracle.base_nodes
        # ML's 3-core around D is empty -> ML must be pruned.
        assert pg.taxonomy.id_of("ML") not in oracle.base_nodes

    def test_no_pruning_without_index(self, pg):
        oracle = FeasibilityOracle(pg, "D", 3, index=None)
        assert oracle.base_nodes == pg.labels("D")

    def test_pruning_preserves_answers(self, pg):
        for k in (1, 2, 3):
            with_index = {
                c.subtree.nodes: c.vertices for c in pcs(pg, "D", k, method="incre")
            }
            without = {
                c.subtree.nodes: c.vertices for c in pcs(pg, "D", k, method="basic")
            }
            assert with_index == without
