"""Tests for graph edge-list IO and the error hierarchy."""

import pytest

from repro import errors
from repro.graph import Graph, gnp_graph, read_edge_list, write_edge_list


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        g = gnp_graph(25, 0.25, seed=1)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.vertex_set() == g.vertex_set()
        assert sorted(map(sorted, loaded.edges())) == sorted(map(sorted, g.edges()))

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph([(0, 1)])
        g.add_vertex(7)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert 7 in loaded
        assert loaded.degree(7) == 0

    def test_string_vertices(self, tmp_path):
        g = Graph([("a", "b")])
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path, int_vertices=False)
        assert loaded.has_edge("a", "b")

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n0 1\n\n# tail\n1 2\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 2

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(errors.InvalidInputError):
            read_edge_list(path)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "InvalidInputError",
            "VertexNotFoundError",
            "EdgeNotFoundError",
            "LabelNotFoundError",
            "NotAncestorClosedError",
            "IntegrityError",
            "IndexNotBuiltError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_input_errors_are_value_errors(self):
        assert issubclass(errors.InvalidInputError, ValueError)
        assert issubclass(errors.VertexNotFoundError, ValueError)

    def test_payloads(self):
        err = errors.VertexNotFoundError("x")
        assert err.vertex == "x"
        err2 = errors.EdgeNotFoundError(1, 2)
        assert err2.edge == (1, 2)
        err3 = errors.LabelNotFoundError(5)
        assert err3.label == 5

    def test_catchable_as_base(self):
        g = Graph()
        with pytest.raises(errors.ReproError):
            g.remove_vertex("missing")
