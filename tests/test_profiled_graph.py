"""Tests for ProfiledGraph (profiles, stats, sampling)."""

import pytest

from repro.core import ProfiledGraph
from repro.datasets import fig1_profiled_graph, fig1_taxonomy
from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph import Graph
from repro.ptree import PTree


@pytest.fixture
def pg():
    return fig1_profiled_graph()


class TestConstruction:
    def test_profiles_closed(self, pg):
        tax = pg.taxonomy
        for v in pg.vertices():
            assert tax.is_ancestor_closed(pg.labels(v))

    def test_name_profiles_coerced(self):
        tax = fig1_taxonomy()
        g = Graph([("x", "y")])
        pg = ProfiledGraph(g, tax, {"x": ("ML",)})
        assert pg.labels("x") == tax.closure([tax.id_of("ML")])

    def test_ptree_profile_accepted(self):
        tax = fig1_taxonomy()
        g = Graph([("x", "y")])
        profile = PTree.from_names(tax, ["AI"])
        pg = ProfiledGraph(g, tax, {"x": profile})
        assert pg.labels("x") == profile.nodes

    def test_missing_vertices_get_empty_profile(self):
        tax = fig1_taxonomy()
        g = Graph([("x", "y")])
        pg = ProfiledGraph(g, tax, {})
        assert pg.labels("x") == frozenset()

    def test_unknown_vertex_rejected(self):
        tax = fig1_taxonomy()
        g = Graph([("x", "y")])
        with pytest.raises(VertexNotFoundError):
            ProfiledGraph(g, tax, {"zz": ("ML",)})

    def test_foreign_taxonomy_ptree_rejected(self):
        tax1 = fig1_taxonomy()
        tax2 = fig1_taxonomy()
        g = Graph([("x", "y")])
        with pytest.raises(InvalidInputError):
            ProfiledGraph(g, tax1, {"x": PTree.root_only(tax2)})


class TestAccess:
    def test_ptree_cached(self, pg):
        assert pg.ptree("A") is pg.ptree("A")

    def test_labels_missing_raises(self, pg):
        with pytest.raises(VertexNotFoundError):
            pg.labels("ZZ")

    def test_vertices_with_subtree(self, pg):
        tax = pg.taxonomy
        ml_tree = tax.closure([tax.id_of("ML")])
        assert pg.vertices_with_subtree(ml_tree) == frozenset("BCD")
        assert pg.vertices_with_subtree(frozenset()) == pg.graph.vertex_set()

    def test_contains(self, pg):
        assert "A" in pg
        assert "ZZ" not in pg


class TestStats:
    def test_stats_row(self, pg):
        stats = pg.stats()
        assert stats.num_vertices == 8
        assert stats.num_edges == 11
        assert stats.gp_tree_size == 7
        assert stats.average_ptree_size == pytest.approx(
            sum(len(pg.labels(v)) for v in pg.vertices()) / 8
        )

    def test_gp_tree_is_union(self, pg):
        gp = pg.gp_tree()
        union = frozenset()
        for v in pg.vertices():
            union |= pg.labels(v)
        assert gp.nodes == union


class TestSampling:
    def test_sample_vertices(self, pg):
        sub = pg.sample_vertices(0.5, seed=1)
        assert sub.num_vertices == 4
        for v in sub.vertices():
            assert sub.labels(v) == pg.labels(v)

    def test_sample_vertices_full_fraction_returns_self(self, pg):
        assert pg.sample_vertices(1.0) is pg

    def test_sample_vertices_bad_fraction(self, pg):
        with pytest.raises(InvalidInputError):
            pg.sample_vertices(0.0)
        with pytest.raises(InvalidInputError):
            pg.sample_vertices(1.5)

    def test_sample_ptrees_closed_and_smaller(self, pg):
        sub = pg.sample_ptrees(0.5, seed=2)
        assert sub.num_vertices == pg.num_vertices
        for v in sub.vertices():
            assert sub.taxonomy.is_ancestor_closed(sub.labels(v))
            assert len(sub.labels(v)) <= len(pg.labels(v)) or len(pg.labels(v)) <= 1

    def test_sample_ptrees_deterministic(self, pg):
        a = pg.sample_ptrees(0.4, seed=3)
        b = pg.sample_ptrees(0.4, seed=3)
        assert a.all_labels() == b.all_labels()

    def test_restrict_gp_tree(self, pg):
        sub = pg.restrict_gp_tree(0.5, seed=4)
        assert sub.taxonomy.num_nodes <= pg.taxonomy.num_nodes
        for v in sub.vertices():
            assert sub.taxonomy.is_ancestor_closed(sub.labels(v))

    def test_restrict_gp_tree_keeps_topology(self, pg):
        sub = pg.restrict_gp_tree(0.3, seed=5)
        assert sub.num_vertices == pg.num_vertices
        assert sub.num_edges == pg.num_edges
