"""Tests for the random graph generators."""

import pytest

from repro.errors import InvalidInputError
from repro.graph import (
    Graph,
    core_numbers,
    gnp_graph,
    planted_community_graph,
    preferential_attachment_graph,
    random_queries,
    ring_of_cliques,
)


class TestGnp:
    def test_size(self):
        g = gnp_graph(50, 0.1, seed=0)
        assert g.num_vertices == 50

    def test_extremes(self):
        empty = gnp_graph(10, 0.0, seed=0)
        assert empty.num_edges == 0
        full = gnp_graph(6, 1.0, seed=0)
        assert full.num_edges == 15

    def test_deterministic(self):
        a = gnp_graph(40, 0.2, seed=5)
        b = gnp_graph(40, 0.2, seed=5)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_density_roughly_matches_p(self):
        g = gnp_graph(200, 0.1, seed=1)
        expected = 0.1 * 199 / 2 * 200
        assert 0.6 * expected < g.num_edges < 1.4 * expected

    def test_invalid_args(self):
        with pytest.raises(InvalidInputError):
            gnp_graph(-1, 0.5)
        with pytest.raises(InvalidInputError):
            gnp_graph(5, 1.5)


class TestPreferentialAttachment:
    def test_connected_and_sized(self):
        g = preferential_attachment_graph(100, 3, seed=2)
        assert g.num_vertices == 100
        assert g.is_connected()
        assert g.num_edges >= 3 * 96

    def test_heavy_tail(self):
        g = preferential_attachment_graph(300, 2, seed=3)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # the hub is much larger than the median degree
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_invalid_args(self):
        with pytest.raises(InvalidInputError):
            preferential_attachment_graph(5, 0)
        with pytest.raises(InvalidInputError):
            preferential_attachment_graph(3, 3)


class TestPlantedCommunities:
    def test_ground_truth_shape(self):
        g, communities = planted_community_graph(
            200, 10, 15, seed=4, p_in=0.5, overlap=0.2
        )
        assert g.num_vertices == 200
        assert len(communities) == 10
        for members in communities:
            assert 3 <= len(members) <= 23

    def test_communities_denser_than_background(self):
        g, communities = planted_community_graph(
            300, 8, 20, seed=5, p_in=0.5, p_out_degree=1.0
        )
        adj = g.adjacency()
        intra = 0
        possible = 0
        for members in communities:
            ms = sorted(members)
            for i, u in enumerate(ms):
                intra += sum(1 for v in ms[i + 1 :] if v in adj[u])
                possible += len(ms) - i - 1
        density_in = intra / possible
        density_all = 2 * g.num_edges / (300 * 299)
        assert density_in > 5 * density_all

    def test_blocky_overlap(self):
        _, communities = planted_community_graph(
            100, 12, 20, seed=6, overlap=0.4
        )
        overlaps = [
            len(a & b)
            for i, a in enumerate(communities)
            for b in communities[i + 1 :]
        ]
        assert max(overlaps) >= 4  # blocks, not single scattered vertices

    def test_invalid_args(self):
        with pytest.raises(InvalidInputError):
            planted_community_graph(0, 1, 5)
        with pytest.raises(InvalidInputError):
            planted_community_graph(10, -1, 5)
        with pytest.raises(InvalidInputError):
            planted_community_graph(10, 1, 5, overlap=2.0)


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(3, 4)
        assert g.num_vertices == 12
        core = core_numbers(g)
        assert all(c >= 3 for c in core.values())

    def test_invalid(self):
        with pytest.raises(InvalidInputError):
            ring_of_cliques(0, 3)


class TestRandomQueries:
    def test_queries_come_from_k_core(self):
        g = gnp_graph(120, 0.15, seed=7)
        queries = random_queries(g, 10, 4, seed=7)
        core = core_numbers(g)
        for q in queries:
            assert core[q] >= 4

    def test_fallback_when_core_empty(self):
        g = Graph([(0, 1), (1, 2)])
        queries = random_queries(g, 2, 10, seed=8)
        assert queries  # falls back to a smaller core instead of empty

    def test_restriction(self):
        g = gnp_graph(60, 0.3, seed=9)
        allowed = set(range(0, 30))
        queries = random_queries(g, 5, 2, seed=9, restrict_to=allowed)
        assert set(queries) <= allowed

    def test_count_capped_by_pool(self):
        g = ring_of_cliques(1, 5)
        queries = random_queries(g, 50, 4, seed=10)
        assert len(queries) == 5
