"""White-box tests for the advanced machinery (expandPtree, cut finders).

These complement the black-box equivalence suite with targeted checks on
the border-walk mechanics: cut validity along the expansion, dedup
behaviour, and the special cases of Algorithm 4 line 2.
"""

import random

import pytest

from repro.core import (
    FeasibilityOracle,
    ProfiledGraph,
    expand_ptree,
    find_initial_cut_decre,
    find_initial_cut_incre,
    find_initial_cut_path,
    pcs,
)
from repro.datasets import fig1_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.errors import InvalidInputError
from repro.graph import Graph
from repro.ptree.taxonomy import ROOT

FINDERS = (find_initial_cut_incre, find_initial_cut_decre, find_initial_cut_path)


def themed_instance(seed: int):
    """A planted single-community instance with a deep theme."""
    rng = random.Random(seed)
    tax = synthetic_taxonomy(120, seed=seed)
    theme = tax.random_focused_subtree(rng, 8, anchor_depth=1)
    n = 14
    g = Graph()
    g.add_vertices(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.7:
                g.add_edge(i, j)
    profiles = {}
    for v in range(n):
        extra = tax.closure([rng.randrange(tax.num_nodes)])
        profiles[v] = frozenset(theme) | extra
    return ProfiledGraph(g, tax, profiles, validate=False)


class TestExpandPtree:
    def test_results_match_pcs(self):
        for seed in range(5):
            pg = themed_instance(seed)
            oracle = FeasibilityOracle(pg, 0, 3, index=pg.index())
            cut = find_initial_cut_path(oracle)
            assert cut is not None
            results = expand_ptree(oracle, cut)
            expected = {
                c.subtree.nodes: c.vertices for c in pcs(pg, 0, 3, method="incre")
            }
            assert results == expected

    def test_special_case_no_children(self):
        pg = fig1_profiled_graph()
        oracle = FeasibilityOracle(pg, "C", 2, index=pg.index())
        # C's full P-tree is feasible: IF = None special case.
        results = expand_ptree(oracle, (None, pg.labels("C")))
        assert pg.labels("C") in results
        assert results[pg.labels("C")] == frozenset("BCD")

    def test_results_accumulate_into_given_dict(self):
        pg = fig1_profiled_graph()
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        bucket = {}
        out = expand_ptree(oracle, find_initial_cut_path(oracle), bucket)
        assert out is bucket
        assert len(bucket) == 2

    def test_every_recorded_subtree_is_maximal(self):
        for seed in range(4):
            pg = themed_instance(10 + seed)
            oracle = FeasibilityOracle(pg, 1, 3, index=pg.index())
            cut = find_initial_cut_decre(oracle)
            if cut is None:
                continue
            results = expand_ptree(oracle, cut)
            for subtree in results:
                assert oracle.is_maximal(subtree)


class TestFinderContracts:
    @pytest.mark.parametrize("finder", FINDERS)
    def test_cut_adjacency(self, finder):
        for seed in range(5):
            pg = themed_instance(20 + seed)
            oracle = FeasibilityOracle(pg, 2, 3, index=pg.index())
            cut = finder(oracle)
            if cut is None:
                continue
            infeasible, feasible = cut
            assert oracle.is_feasible(feasible)
            assert ROOT in feasible or not feasible
            if infeasible is not None:
                assert len(infeasible - feasible) == 1
                assert not oracle.is_feasible(infeasible)

    @pytest.mark.parametrize("finder", FINDERS)
    def test_finders_share_downstream_answer(self, finder):
        pg = themed_instance(42)
        oracle = FeasibilityOracle(pg, 0, 3, index=pg.index())
        cut = finder(oracle)
        results = expand_ptree(oracle, cut) if cut else {}
        expected = {
            c.subtree.nodes: c.vertices for c in pcs(pg, 0, 3, method="basic")
        }
        assert results == expected

    def test_find_functions_verification_ordering(self):
        # find-I sweeps the interior; find-P probes paths. On a themed
        # instance find-P must not verify more subtrees than find-I.
        pg = themed_instance(7)
        oracle_i = FeasibilityOracle(pg, 0, 3, index=pg.index())
        find_initial_cut_incre(oracle_i)
        oracle_p = FeasibilityOracle(pg, 0, 3, index=pg.index())
        find_initial_cut_path(oracle_p)
        assert oracle_p.verifications <= oracle_i.verifications + 2


class TestAdvancedQueryValidation:
    def test_unknown_finder_rejected(self):
        pg = fig1_profiled_graph()
        from repro.core import advanced_query

        with pytest.raises(InvalidInputError):
            advanced_query(pg, "D", 2, find="X")

    def test_method_names_in_results(self):
        pg = fig1_profiled_graph()
        for find, expected in (("I", "adv-I"), ("D", "adv-D"), ("P", "adv-P")):
            from repro.core import advanced_query

            result = advanced_query(pg, "D", 2, find=find)
            assert result.method == expected
