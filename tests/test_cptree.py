"""Tests for the CP-tree index."""

import random

import pytest

from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.errors import InvalidInputError, LabelNotFoundError
from repro.graph import connected_k_core
from repro.index import CPTree


@pytest.fixture
def fig1():
    return fig1_profiled_graph()


@pytest.fixture
def fig1_index(fig1):
    return CPTree(fig1.graph, fig1.all_labels(), fig1.taxonomy)


class TestConstruction:
    def test_labels_indexed(self, fig1, fig1_index):
        # every label used by some vertex gets a CP node
        used = set()
        for v in fig1.vertices():
            used |= fig1.labels(v)
        assert set(fig1_index.labels()) == used
        assert fig1_index.num_labels == len(used)

    def test_vertices_with_label(self, fig1, fig1_index):
        tax = fig1.taxonomy
        ml = tax.id_of("ML")
        expected = frozenset(
            v for v in fig1.vertices() if ml in fig1.labels(v)
        )
        assert fig1_index.vertices_with_label(ml) == expected

    def test_cp_node_linking_follows_taxonomy(self, fig1, fig1_index):
        tax = fig1.taxonomy
        ml_node = fig1_index.node(tax.id_of("ML"))
        assert ml_node.parent is fig1_index.node(tax.id_of("CM"))
        cm_node = fig1_index.node(tax.id_of("CM"))
        child_labels = {c.label for c in cm_node.children}
        assert tax.id_of("ML") in child_labels

    def test_unknown_vertex_rejected(self, fig1):
        labels = dict(fig1.all_labels())
        labels["ZZ"] = frozenset({0})
        with pytest.raises(InvalidInputError):
            CPTree(fig1.graph, labels, fig1.taxonomy)

    def test_non_closed_profile_rejected(self, fig1):
        tax = fig1.taxonomy
        labels = dict(fig1.all_labels())
        labels["A"] = frozenset({tax.id_of("ML")})  # missing CM, r
        with pytest.raises(InvalidInputError):
            CPTree(fig1.graph, labels, tax, validate=True)

    def test_node_unknown_label_raises(self, fig1_index):
        with pytest.raises(LabelNotFoundError):
            fig1_index.node(9999)


class TestHeadMap:
    def test_head_labels_are_ptree_leaves(self, fig1, fig1_index):
        tax = fig1.taxonomy
        for v in fig1.vertices():
            labels = fig1.labels(v)
            heads = fig1_index.head_labels(v)
            for x in heads:
                assert x in labels
                assert not any(c in labels for c in tax.children(x))

    def test_restore_ptree_roundtrip(self, fig1, fig1_index):
        for v in fig1.vertices():
            assert fig1_index.restore_ptree(v) == fig1.labels(v)

    def test_unknown_vertex_raises(self, fig1_index):
        with pytest.raises(InvalidInputError):
            fig1_index.restore_ptree("nope")
        with pytest.raises(InvalidInputError):
            fig1_index.head_labels("nope")


class TestGet:
    """I.get(k, q, t) must equal the k-ĉore of the label-induced subgraph."""

    def test_fig1_examples(self, fig1, fig1_index):
        tax = fig1.taxonomy
        # vertices with CM: A, B, C, D, G -- edges: A-B, A-D, B-C, B-D, C-D
        cm = tax.id_of("CM")
        assert fig1_index.get(2, "D", cm) == frozenset("ABCD")
        # vertices with ML: B, C, D form a triangle
        ml = tax.id_of("ML")
        assert fig1_index.get(2, "D", ml) == frozenset("BCD")
        # IS: A, D, E, F, H; A-D-E triangle, F,H not adjacent to it
        is_ = tax.id_of("IS")
        assert fig1_index.get(2, "D", is_) == frozenset("ADE")

    def test_get_unused_label_empty(self, fig1_index):
        assert fig1_index.get(1, "D", 999999) == frozenset()

    def test_get_vertex_without_label(self, fig1, fig1_index):
        # Regression: q not carrying the label must yield the empty set at
        # every k (including k=0), never raise — the CL-tree lookup for an
        # absent vertex short-circuits before touching core numbers.
        ml = fig1.taxonomy.id_of("ML")
        assert "ML" not in fig1.ptree("E").names()
        for k in (0, 1, 2, 5):
            assert fig1_index.get(k, "E", ml) == frozenset()

    def test_get_unknown_vertex_empty(self, fig1, fig1_index):
        ml = fig1.taxonomy.id_of("ML")
        assert fig1_index.get(1, "not-a-vertex", ml) == frozenset()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_cross_check(self, seed):
        tax = synthetic_taxonomy(30, seed=seed)
        pg = simple_profiled_graph(tax, 40, seed=seed, edge_probability=0.2)
        index = CPTree(pg.graph, pg.all_labels(), tax)
        rng = random.Random(seed)
        for _ in range(30):
            label = rng.randrange(tax.num_nodes)
            q = rng.randrange(40)
            k = rng.randint(0, 4)
            members = [v for v in pg.vertices() if label in pg.labels(v)]
            sub = pg.graph.subgraph(members)
            expected = (
                connected_k_core(sub, q, k) if q in sub else frozenset()
            )
            assert index.get(k, q, label) == expected


class TestProfiledGraphIntegration:
    def test_index_cached(self, fig1):
        first = fig1.index()
        assert fig1.index() is first
        rebuilt = fig1.index(rebuild=True)
        assert rebuilt is not first

    def test_index_num_vertices(self, fig1):
        assert fig1.index().num_vertices == fig1.num_vertices
