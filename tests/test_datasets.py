"""Tests for the dataset suite: fig1, taxonomies, synthetic, ego, registry, io."""

import pytest

from repro.core import pcs
from repro.datasets import (
    DATASET_SPECS,
    EGO_SPECS,
    SyntheticConfig,
    ccs_fragment,
    ccs_like_taxonomy,
    dataset_names,
    dataset_taxonomy,
    ego_names,
    fig1_profiled_graph,
    load_dataset,
    load_ego_network,
    load_profiled_graph,
    mesh_like_taxonomy,
    save_profiled_graph,
    simple_profiled_graph,
    synthetic_profiled_graph,
    synthetic_taxonomy,
)
from repro.errors import InvalidInputError


class TestFig1:
    def test_statistics(self):
        pg = fig1_profiled_graph()
        assert pg.num_vertices == 8
        assert pg.num_edges == 11
        assert pg.taxonomy.num_nodes == 7

    def test_example1_cores(self):
        from repro.graph import connected_k_core

        pg = fig1_profiled_graph()
        assert connected_k_core(pg.graph, "D", 3) == frozenset("ABDE")
        assert connected_k_core(pg.graph, "D", 2) == frozenset("ABCDE")
        assert connected_k_core(pg.graph, "F", 2) == frozenset("FGH")

    def test_paper_pcs_and_acq_divergence(self):
        from repro.baselines import acq_query

        pg = fig1_profiled_graph()
        pcs_result = pcs(pg, "D", 2)
        acq_result = acq_query(pg, "D", 2)
        assert len(pcs_result) == 2
        assert len(acq_result) == 1  # ACQ misses the {A, D, E} community


class TestTaxonomies:
    def test_ccs_fragment_names(self):
        tax = ccs_fragment()
        assert tax.id_of("Information systems") > 0
        assert tax.parent(tax.id_of("Machine learning")) == tax.id_of(
            "Computing methodologies"
        )

    def test_synthetic_taxonomy_size_and_depth(self):
        tax = synthetic_taxonomy(200, seed=1, max_depth=5)
        assert tax.num_nodes == 200
        assert tax.height() <= 5

    def test_synthetic_taxonomy_deterministic(self):
        a = synthetic_taxonomy(100, seed=9)
        b = synthetic_taxonomy(100, seed=9)
        assert [a.parent(i) for i in a.nodes()] == [b.parent(i) for i in b.nodes()]

    def test_sizes_match_paper(self):
        assert ccs_like_taxonomy(1908).num_nodes == 1908
        assert mesh_like_taxonomy(500).num_nodes == 500

    def test_invalid_args(self):
        with pytest.raises(InvalidInputError):
            synthetic_taxonomy(0)
        with pytest.raises(InvalidInputError):
            synthetic_taxonomy(10, max_depth=0)


class TestSynthetic:
    def test_profiles_ancestor_closed(self):
        tax = synthetic_taxonomy(150, seed=3)
        config = SyntheticConfig(num_vertices=80, num_communities=5)
        pg, communities = synthetic_profiled_graph(tax, config, seed=3)
        for v in pg.vertices():
            assert tax.is_ancestor_closed(pg.labels(v))
        assert len(communities) == 5

    def test_primary_members_share_theme(self):
        tax = synthetic_taxonomy(150, seed=4)
        config = SyntheticConfig(num_vertices=60, num_communities=3, theme_size=5)
        pg, communities = synthetic_profiled_graph(tax, config, seed=4)
        claimed = set()
        for members in communities:
            primary_members = [v for v in members if v not in claimed]
            claimed |= members
            if len(primary_members) < 2:
                continue
            common = None
            for v in primary_members:
                labels = pg.labels(v)
                common = labels if common is None else common & labels
            # primary members share a non-trivial subtree (their theme)
            assert common and len(common) >= 2

    def test_deterministic(self):
        tax = synthetic_taxonomy(100, seed=5)
        config = SyntheticConfig(num_vertices=50, num_communities=4)
        pg1, c1 = synthetic_profiled_graph(tax, config, seed=5)
        pg2, c2 = synthetic_profiled_graph(tax, config, seed=5)
        assert pg1.all_labels() == pg2.all_labels()
        assert c1 == c2
        assert pg1.num_edges == pg2.num_edges

    def test_simple_profiled_graph(self):
        tax = synthetic_taxonomy(50, seed=6)
        pg = simple_profiled_graph(tax, 30, seed=6)
        assert pg.num_vertices == 30

    def test_invalid_config(self):
        with pytest.raises(InvalidInputError):
            SyntheticConfig(num_vertices=0, num_communities=1)
        with pytest.raises(InvalidInputError):
            SyntheticConfig(num_vertices=10, num_communities=1, theme_size=0)


class TestRegistry:
    def test_names(self):
        assert set(dataset_names()) == {"acmdl", "flickr", "pubmed", "dblp"}

    def test_paper_rows(self):
        row = DATASET_SPECS["acmdl"].paper_row()
        assert row == (107_656, 717_958, 13.34, 11.54, 1_908)

    @pytest.mark.parametrize("name", ["acmdl"])
    def test_load_small_scale(self, name):
        pg = load_dataset(name, scale=0.004, seed=1)
        spec = DATASET_SPECS[name]
        stats = pg.stats()
        assert stats.num_vertices >= 300
        # degree lands within 40% of the paper's at tiny scales
        assert abs(stats.average_degree - spec.paper_avg_degree) < 0.4 * spec.paper_avg_degree
        assert stats.gp_tree_size == spec.paper_gp_size

    def test_with_ground_truth(self):
        pg, communities = load_dataset("acmdl", scale=0.004, with_ground_truth=True)
        assert communities
        for members in communities:
            assert all(v in pg for v in members)

    def test_unknown_name(self):
        with pytest.raises(InvalidInputError):
            load_dataset("imagenet")

    def test_bad_scale(self):
        with pytest.raises(InvalidInputError):
            load_dataset("acmdl", scale=0.0)

    def test_gp_size_override(self):
        pg = load_dataset("acmdl", scale=0.004, gp_size=400)
        assert pg.taxonomy.num_nodes == 400

    def test_taxonomy_cached(self):
        a = dataset_taxonomy("ccs", 1908)
        b = dataset_taxonomy("ccs", 1908)
        assert a is b


class TestEgo:
    def test_names(self):
        assert set(ego_names()) == {"fb1", "fb2", "fb3"}

    def test_paper_rows(self):
        assert EGO_SPECS["fb1"].paper_row() == (1_233, 11_972, 19.41, 34.54)

    def test_load_fb3(self):
        pg, circles = load_ego_network("fb3", seed=2)
        assert pg.num_vertices == EGO_SPECS["fb3"].paper_vertices
        assert len(circles) == EGO_SPECS["fb3"].num_circles

    def test_unknown(self):
        with pytest.raises(InvalidInputError):
            load_ego_network("fb9")


class TestIO:
    def test_roundtrip_fig1(self, tmp_path):
        pg = fig1_profiled_graph()
        path = tmp_path / "fig1.json"
        save_profiled_graph(pg, path)
        loaded = load_profiled_graph(path)
        assert loaded.num_vertices == pg.num_vertices
        assert loaded.num_edges == pg.num_edges
        for v in pg.vertices():
            assert loaded.labels(v) == pg.labels(v)
            assert loaded.taxonomy.name(0) == pg.taxonomy.name(0)

    def test_roundtrip_int_vertices(self, tmp_path):
        tax = synthetic_taxonomy(40, seed=7)
        pg = simple_profiled_graph(tax, 20, seed=7)
        path = tmp_path / "g.json"
        save_profiled_graph(pg, path)
        loaded = load_profiled_graph(path)
        assert set(loaded.vertices()) == set(pg.vertices())
        assert all(isinstance(v, int) for v in loaded.vertices())

    def test_reject_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(InvalidInputError):
            load_profiled_graph(path)

    def test_pcs_equal_after_roundtrip(self, tmp_path):
        from repro.core import as_vertex_subtree_map

        pg = fig1_profiled_graph()
        path = tmp_path / "fig1.json"
        save_profiled_graph(pg, path)
        loaded = load_profiled_graph(path)
        before = as_vertex_subtree_map(pcs(pg, "D", 2))
        after = {
            frozenset(loaded.taxonomy.name(x) for x in t): v
            for t, v in as_vertex_subtree_map(pcs(loaded, "D", 2)).items()
        }
        named_before = {
            frozenset(pg.taxonomy.name(x) for x in t): v for t, v in before.items()
        }
        assert named_before == after
