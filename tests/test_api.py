"""Tests for the unified public query surface (repro.api)."""

import json

import pytest

from repro.api import (
    CommunityService,
    Engine,
    MetricsMiddleware,
    Middleware,
    PlanDecision,
    Query,
    QueryBuilder,
    QueryPlanner,
    QueryResponse,
    ResultLimitMiddleware,
)
from repro.api.response import CommunityView
from repro.core import as_vertex_subtree_map, pcs
from repro.core.cohesion import KCoreCohesion
from repro.core.search import ALL_METHODS
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.engine import CommunityExplorer, QuerySpec
from repro.errors import InvalidInputError, VertexNotFoundError


@pytest.fixture()
def fig1():
    return fig1_profiled_graph()


@pytest.fixture()
def service(fig1):
    return CommunityService(fig1, default_k=2)


def synthetic_instance(seed=3, n=24):
    tax = synthetic_taxonomy(40, seed=seed)
    return simple_profiled_graph(tax, n, seed=seed, edge_probability=0.35)


def test_root_package_reexports_the_api():
    import repro

    assert repro.Query is Query
    assert repro.CommunityService is CommunityService
    assert repro.QueryResponse is QueryResponse
    assert repro.Engine is Engine
    assert repro.api.QueryPlanner is QueryPlanner
    with pytest.raises(AttributeError):
        repro.api.NoSuchThing


# ----------------------------------------------------------------------
# Query + builder
# ----------------------------------------------------------------------
class TestQueryBuilder:
    def test_fluent_chain_builds_the_full_query(self):
        q = (
            Query.vertex("D").k(6).method("adv-P").cohesion("k-truss")
            .limit(10).min_size(3).build()
        )
        assert q == Query(
            vertex="D", k=6, method="adv-P", cohesion="k-truss", limit=10, min_size=3
        )

    def test_builder_prefixes_are_shareable(self):
        base = Query.vertex("D").k(2)
        a, b = base.method("basic").build(), base.method("incre").build()
        assert (a.method, b.method) == ("basic", "incre")
        assert base.build().method is None  # the shared prefix is untouched

    def test_builder_accepted_wherever_query_is(self, service):
        builder = Query.vertex("D").k(2)
        assert service.query(builder).returned == 2
        assert Query.coerce(builder) == builder.build()
        assert isinstance(builder, QueryBuilder)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vertex": None},
            {"vertex": "D", "k": -1},
            {"vertex": "D", "k": "six"},
            {"vertex": "D", "method": "warp"},
            {"vertex": "D", "cohesion": "k-warp"},
            {"vertex": "D", "limit": 0},
            {"vertex": "D", "limit": "ten"},
            {"vertex": "D", "min_size": 0},
            {"vertex": "D", "min_size": None},
        ],
    )
    def test_validation_errors_raise_upfront(self, kwargs):
        with pytest.raises(InvalidInputError):
            Query(**kwargs)

    def test_builder_steps_validate_eagerly(self):
        with pytest.raises(InvalidInputError):
            Query.vertex("D").k(-3)
        with pytest.raises(InvalidInputError):
            Query.vertex("D").method("bogus")
        with pytest.raises(InvalidInputError):
            Query.vertex("D").limit(-1)

    def test_method_spelling_is_canonicalised(self):
        assert Query(vertex="D", method="ADV-p").method == "adv-P"
        assert Query(vertex="D", method="BASIC").method == "basic"

    def test_replace_rejects_unknown_fields(self):
        with pytest.raises(InvalidInputError):
            Query(vertex="D").replace(methud="basic")


class TestQueryCoercionAndWire:
    def test_coerce_shapes(self):
        assert Query.coerce("D") == Query(vertex="D")
        assert Query.coerce(("D", 2)) == Query(vertex="D", k=2)
        assert Query.coerce(("D", 2, "basic")) == Query(vertex="D", k=2, method="basic")
        spec = QuerySpec(q="D", k=2, method="incre")
        assert Query.coerce(spec) == Query(vertex="D", k=2, method="incre")

    def test_coerce_rejects_oversized_tuple(self):
        with pytest.raises(InvalidInputError):
            Query.coerce(("D", 2, "basic", None, "extra"))

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidInputError, match="methud"):
            Query.from_dict({"vertex": "D", "methud": "basic"})
        with pytest.raises(InvalidInputError):
            Query.from_dict({"k": 2})  # no vertex

    def test_from_dict_accepts_legacy_q_key(self):
        assert Query.from_dict({"q": "D", "k": 2}) == Query(vertex="D", k=2)
        with pytest.raises(InvalidInputError):
            Query.from_dict({"q": "D", "vertex": "D"})

    def test_json_round_trip(self):
        q = Query(vertex="D", k=3, method="closed", cohesion="k-truss", limit=4, min_size=2)
        assert Query.from_dict(json.loads(json.dumps(q.to_dict()))) == q

    def test_unregistered_cohesion_instance_not_serialisable(self):
        class Custom(KCoreCohesion):
            name = "custom-core"

        q = Query(vertex="D", cohesion=Custom())
        with pytest.raises(InvalidInputError, match="serialis"):
            q.to_dict()

    def test_registered_cohesion_instances_canonicalise_to_names(self):
        from repro.core.cohesion import KTrussCohesion

        assert Query(vertex="D", cohesion=KCoreCohesion()) == Query(
            vertex="D", cohesion="k-core"
        )
        assert Query(vertex="D", cohesion=KTrussCohesion).cohesion == "k-truss"

    def test_round_trip_with_cohesion_instance(self, fig1):
        service = CommunityService(fig1, default_k=2)
        response = service.query(Query(vertex="D", k=2, cohesion=KCoreCohesion()))
        restored = QueryResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert restored == response

    def test_service_cache_key_uses_session_defaults(self, fig1):
        service = CommunityService(fig1, default_k=2)
        key = service.cache_key(Query(vertex="D"))
        assert key == service.explorer.resolve_key(("D",))
        assert key[1] == 2  # the session default, not the paper default
        assert Query(vertex="D").cache_key(default_k=2, default_method="adv-P")[1:] == key

    def test_cache_key_canonicalisation(self):
        default = Query(vertex="D")
        explicit = Query(vertex="D", k=6, method="adv-P", cohesion="k-core")
        paged = Query(vertex="D", k=6, method="adv-P", limit=1, min_size=5)
        assert default.cache_key() == explicit.cache_key() == paged.cache_key()
        assert Query(vertex="D", k=5).cache_key() != default.cache_key()

    def test_cache_key_separates_parametrised_unregistered_models(self):
        class Frac(KCoreCohesion):
            name = "frac-core"  # not in the registry

            def __init__(self, t):
                self.t = t

        a, b = Query(vertex="D", cohesion=Frac(0.5)), Query(vertex="D", cohesion=Frac(0.9))
        assert a.cache_key() != b.cache_key()  # identity-keyed, never by repr


# ----------------------------------------------------------------------
# QueryResponse envelope
# ----------------------------------------------------------------------
class TestQueryResponse:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_json_round_trip_every_method(self, service, method):
        response = service.query(Query.vertex("D").k(2).method(method))
        restored = QueryResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert restored == response
        assert restored.communities == response.communities
        assert restored.method == method
        assert restored.result is None and response.result is not None

    def test_round_trip_on_synthetic_int_vertices(self):
        pg = synthetic_instance()
        service = CommunityService(pg, default_k=2)
        vertex = sorted(pg.vertices())[0]
        response = service.query(Query.vertex(vertex).k(1))
        restored = QueryResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert restored == response

    def test_views_match_the_raw_result(self, service):
        response = service.query(Query.vertex("D").k(2))
        assert response.total_communities == len(response.result)
        for view, community in zip(response.communities, response.result):
            assert set(view.vertices) == set(community.vertices)
            assert set(view.theme) == community.theme()
            assert set(view.subtree_nodes) == set(community.subtree.nodes)

    def test_limit_and_min_size_metadata(self, service):
        full = service.query(Query.vertex("D").k(2))
        assert (full.truncated, full.matched) == (False, 2)
        limited = service.query(Query.vertex("D").k(2).limit(1))
        assert limited.returned == 1 and limited.truncated
        assert limited.matched == 2 and limited.total_communities == 2
        sized = service.query(Query.vertex("D").k(2).min_size(4))
        assert sized.returned == 0 and not sized.truncated
        assert sized.total_communities == 2 and sized.matched == 0

    def test_page_aligns_with_the_wire_views(self, service):
        response = service.query(Query.vertex("D").k(2).limit(1).min_size(2))
        page = response.page()
        assert len(page) == response.returned == 1
        for community, view in zip(page, response.communities):
            assert set(community.vertices) == set(view.vertices)

    def test_page_requires_the_live_result(self, service):
        response = service.query(Query.vertex("D").k(2))
        restored = QueryResponse.from_dict(response.to_dict())
        with pytest.raises(InvalidInputError, match="deserialised"):
            restored.page()

    def test_from_dict_rejects_unknown_and_missing_fields(self, service):
        payload = service.query(Query.vertex("D").k(2)).to_dict()
        bad = dict(payload, surprise=1)
        with pytest.raises(InvalidInputError, match="surprise"):
            QueryResponse.from_dict(bad)
        with pytest.raises(InvalidInputError):
            QueryResponse.from_dict({"method": "basic"})

    def test_community_view_from_dict_validates(self):
        with pytest.raises(InvalidInputError):
            CommunityView.from_dict({"vertices": ["a"]})


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestQueryPlanner:
    def plan(self, query, **state):
        return QueryPlanner().plan(query, **state)

    def test_pinned_method_is_honoured(self):
        decision = self.plan(Query(vertex="D", method="incre"), index_ready=True)
        assert decision == PlanDecision(
            method="incre", reason="caller pinned the method", planned=False
        )

    def test_warm_index_prefers_adv_p(self):
        assert self.plan(Query(vertex="D"), index_ready=True).method == "adv-P"

    def test_cold_one_shot_skips_the_index(self):
        decision = self.plan(Query(vertex="D"), index_ready=False, one_shot=True)
        assert decision.method == "basic" and decision.planned

    def test_cold_session_amortises_a_build(self):
        assert self.plan(Query(vertex="D"), index_ready=False).method == "adv-P"

    def test_non_core_cohesion_uses_the_compatible_subset(self):
        themed = Query(vertex="D", cohesion="k-truss")
        assert self.plan(themed, index_ready=True).method == "incre"
        assert self.plan(themed, index_ready=False).method == "basic"

    def test_decision_round_trips(self):
        decision = self.plan(Query(vertex="D"), index_ready=True)
        assert PlanDecision.from_dict(json.loads(json.dumps(decision.to_dict()))) == decision
        with pytest.raises(InvalidInputError):
            PlanDecision.from_dict({"method": "adv-P", "why": "typo"})

    def test_service_records_the_decision(self, fig1):
        service = CommunityService(fig1, default_k=2, one_shot=True)
        response = service.query("D")
        assert response.plan.planned and response.plan.method == "basic"
        assert response.method == "basic"
        pinned = service.query(Query.vertex("D").k(2).method("adv-P"))
        assert not pinned.plan.planned and pinned.method == "adv-P"


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------
class TestCommunityService:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_equivalence_with_pcs_fig1(self, fig1, method):
        service = CommunityService(fig1, default_k=2)
        response = service.query(Query.vertex("D").k(2).method(method))
        direct = pcs(fig1, "D", 2, method=method)
        assert as_vertex_subtree_map(response.result) == as_vertex_subtree_map(direct)

    def test_equivalence_with_pcs_synthetic(self):
        pg = synthetic_instance()
        service = CommunityService(pg, default_k=1)
        for vertex in sorted(pg.vertices())[:6]:
            response = service.query(Query.vertex(vertex).k(1))
            direct = pcs(pg, vertex, 1)
            assert as_vertex_subtree_map(response.result) == as_vertex_subtree_map(direct)

    def test_batch_matches_single_queries_and_reports_hits(self, service):
        single = service.query(Query.vertex("D").k(2))
        responses = service.batch(["D", ("E", 2), "D"])
        assert [r.query.vertex for r in responses] == ["D", "E", "D"]
        assert responses[0].communities == single.communities
        # D was cached by the single query; E was not.
        assert responses[0].cache_hit is True
        assert responses[1].cache_hit is False

    def test_single_query_cache_provenance(self, service):
        first = service.query(Query.vertex("D").k(2))
        second = service.query(Query.vertex("D").k(2))
        assert first.cache_hit is False and second.cache_hit is True
        assert second.graph_version == service.pg.version

    def test_unknown_vertex_fails_before_serving(self, service):
        with pytest.raises(VertexNotFoundError):
            service.query("nope")
        with pytest.raises(VertexNotFoundError):
            service.batch(["D", "nope"])
        assert service.stats().queries_served == 0

    def test_adopts_an_existing_explorer(self, fig1):
        explorer = CommunityExplorer(fig1, default_k=2)
        explorer.explore("D")
        service = CommunityService(explorer)
        assert service.explorer is explorer
        assert service.query(Query.vertex("D").k(2)).cache_hit is True

    def test_rejects_non_graph_targets(self):
        with pytest.raises(InvalidInputError):
            CommunityService(object())

    def test_query_overrides(self, service):
        response = service.query("D", k=2, limit=1)
        assert response.k == 2 and response.returned == 1 and response.truncated

    def test_updates_invalidate_and_bump_version(self, service):
        before = service.query(Query.vertex("D").k(2))
        receipt = service.apply_updates([("remove_edge", "C", "D")])
        assert receipt.applied == 1
        after = service.query(Query.vertex("D").k(2))
        assert after.cache_hit is False
        assert after.graph_version == before.graph_version + 1

    def test_mutation_equivalence_after_updates(self, fig1):
        service = CommunityService(fig1, default_k=2)
        service.query(Query.vertex("D").k(2))
        service.apply_updates([("add_edge", "A", "C")])
        response = service.query(Query.vertex("D").k(2))
        assert as_vertex_subtree_map(response.result) == as_vertex_subtree_map(
            pcs(fig1, "D", 2)
        )


class TestMiddleware:
    def test_result_limit_clamps_every_query(self, fig1):
        service = CommunityService(fig1, default_k=2, max_limit=1)
        response = service.query(Query.vertex("D").k(2))
        assert response.returned == 1 and response.truncated
        explicit = service.query(Query.vertex("D").k(2).limit(5))
        assert explicit.returned == 1  # clamped below the requested 5

    def test_result_limit_validates(self):
        with pytest.raises(InvalidInputError):
            ResultLimitMiddleware(0)

    def test_metrics_middleware_aggregates(self, fig1):
        metrics = MetricsMiddleware()
        service = CommunityService(fig1, default_k=2, middleware=[metrics])
        service.query(Query.vertex("D").k(2))
        service.batch(["D", "E"])
        assert metrics.responses == 3
        assert metrics.cache_hits == 1  # the batched D
        assert metrics.communities_returned >= 3

    def test_custom_before_hook_rewrites_queries(self, fig1):
        class ForceBasic(Middleware):
            def before(self, query, service):
                return query.replace(method="basic")

        service = CommunityService(fig1, default_k=2, middleware=[ForceBasic()])
        response = service.query(Query.vertex("D").k(2))
        assert response.method == "basic"
        assert not response.plan.planned  # the rewrite pinned the method

    def test_hooks_run_in_order_and_reverse(self, fig1):
        calls = []

        class Tap(Middleware):
            def __init__(self, tag):
                self.tag = tag

            def before(self, query, service):
                calls.append(("before", self.tag))
                return None

            def after(self, query, response, service):
                calls.append(("after", self.tag))
                return None

        service = CommunityService(fig1, default_k=2, middleware=[Tap(1), Tap(2)])
        service.query(Query.vertex("D").k(2))
        assert calls == [("before", 1), ("before", 2), ("after", 2), ("after", 1)]


# ----------------------------------------------------------------------
# Engine protocol + pcs() shim
# ----------------------------------------------------------------------
class TestEngineProtocol:
    def test_community_explorer_conforms(self, fig1):
        assert isinstance(CommunityExplorer(fig1), Engine)

    def test_pcs_serves_through_a_conforming_engine(self, fig1):
        import warnings

        explorer = CommunityExplorer(fig1, default_k=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no DeprecationWarning expected
            result = pcs(fig1, "D", 2, engine=explorer)
        assert as_vertex_subtree_map(result) == as_vertex_subtree_map(pcs(fig1, "D", 2))
        assert explorer.stats().queries_served == 1

    def test_duck_typed_engine_warns_but_still_works(self, fig1):
        class LegacyEngine:  # explore only — pre-protocol duck typing
            def __init__(self, pg):
                self.pg = pg

            def explore(self, q, k, method=None, cohesion=None):
                return pcs(self.pg, q, k, method=method or "adv-P", cohesion=cohesion)

        with pytest.warns(DeprecationWarning, match="Engine"):
            result = pcs(fig1, "D", 2, engine=LegacyEngine(fig1))
        assert len(result) == 2

    def test_non_engine_object_is_rejected(self, fig1):
        with pytest.raises(InvalidInputError, match="Engine"):
            pcs(fig1, "D", 2, engine=object())

    def test_engine_for_wrong_graph_is_rejected(self, fig1):
        other = fig1_profiled_graph()
        with pytest.raises(InvalidInputError, match="different ProfiledGraph"):
            pcs(fig1, "D", 2, engine=CommunityExplorer(other))


# ----------------------------------------------------------------------
# engine-side integration (QuerySpec/Query interop, explore_query)
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_queryspec_coerce_rejects_unknown_dict_keys(self):
        with pytest.raises(InvalidInputError, match="methud"):
            QuerySpec.coerce({"q": "D", "methud": "basic"})
        with pytest.raises(InvalidInputError):
            QuerySpec.coerce({"k": 2})

    def test_explore_many_accepts_query_objects(self, fig1):
        explorer = CommunityExplorer(fig1, default_k=2)
        results = explorer.explore_many(
            [Query.vertex("D").k(2), Query(vertex="E", k=2), ("D", 2)]
        )
        assert [len(r) for r in results] == [2, 1, 2]
        # In-batch duplicates execute once (dedup) even though both lookups
        # miss the still-cold cache.
        assert explorer.stats().queries_served == 2

    def test_explore_query_envelope_provenance(self, fig1):
        explorer = CommunityExplorer(fig1, default_k=2)
        cold = explorer.explore_query(Query.vertex("D").k(2))
        warm = explorer.explore_query(Query.vertex("D").k(2))
        assert cold.cache_hit is False and warm.cache_hit is True
        assert cold.index_used and cold.graph_version == fig1.version
        basic = explorer.explore_query(Query.vertex("D").k(2).method("basic"))
        assert not basic.index_used

    def test_is_cached_does_not_perturb_stats(self, fig1):
        explorer = CommunityExplorer(fig1, default_k=2)
        assert explorer.is_cached(("D", 2)) is False
        explorer.explore("D", 2)
        before = explorer.stats().cache
        assert explorer.is_cached(("D", 2)) is True
        after = explorer.stats().cache
        assert (before.hits, before.misses) == (after.hits, after.misses)
