"""Tests for the taxonomy (GP-tree)."""

import random

import pytest

from repro.errors import InvalidInputError, LabelNotFoundError
from repro.ptree import ROOT, Taxonomy


def small_taxonomy() -> Taxonomy:
    # r -> a -> (c, d); r -> b -> e
    tax = Taxonomy()
    a = tax.add("a")
    b = tax.add("b")
    tax.add("c", parent=a)
    tax.add("d", parent=a)
    tax.add("e", parent=b)
    return tax


class TestConstruction:
    def test_root_exists(self):
        tax = Taxonomy()
        assert tax.num_nodes == 1
        assert tax.root == ROOT
        assert tax.parent(ROOT) == -1
        assert tax.depth(ROOT) == 0

    def test_add_assigns_sequential_ids(self):
        tax = Taxonomy()
        assert tax.add("x") == 1
        assert tax.add("y") == 2

    def test_duplicate_name_rejected(self):
        tax = Taxonomy()
        tax.add("x")
        with pytest.raises(InvalidInputError):
            tax.add("x")

    def test_bad_parent_rejected(self):
        tax = Taxonomy()
        with pytest.raises(LabelNotFoundError):
            tax.add("x", parent=42)

    def test_add_path_reuses_prefix(self):
        tax = Taxonomy()
        leaf1 = tax.add_path(["IS", "IR"])
        leaf2 = tax.add_path(["IS", "DMS"])
        assert tax.parent(leaf1) == tax.parent(leaf2) == tax.id_of("IS")
        assert tax.num_nodes == 4

    def test_add_path_conflicting_parent_rejected(self):
        tax = Taxonomy()
        tax.add_path(["A", "B"])
        with pytest.raises(InvalidInputError):
            tax.add_path(["C", "B"])


class TestQueries:
    def test_parent_children_depth(self):
        tax = small_taxonomy()
        a = tax.id_of("a")
        c = tax.id_of("c")
        assert tax.parent(c) == a
        assert tax.children(a) == (c, tax.id_of("d"))
        assert tax.depth(c) == 2
        assert tax.height() == 2

    def test_is_leaf(self):
        tax = small_taxonomy()
        assert tax.is_leaf(tax.id_of("c"))
        assert not tax.is_leaf(tax.id_of("a"))

    def test_ancestors_and_path(self):
        tax = small_taxonomy()
        c = tax.id_of("c")
        a = tax.id_of("a")
        assert tax.ancestors(c) == (a, ROOT)
        assert tax.path_to_root(c) == (c, a, ROOT)
        assert tax.ancestors(ROOT) == ()

    def test_name_and_id_roundtrip(self):
        tax = small_taxonomy()
        for node in tax.nodes():
            assert tax.id_of(tax.name(node)) == node

    def test_unknown_label_raises(self):
        tax = small_taxonomy()
        with pytest.raises(LabelNotFoundError):
            tax.id_of("zz")
        with pytest.raises(LabelNotFoundError):
            tax.name(99)

    def test_leaves(self):
        tax = small_taxonomy()
        assert set(tax.leaves()) == {tax.id_of("c"), tax.id_of("d"), tax.id_of("e")}

    def test_subtree_nodes(self):
        tax = small_taxonomy()
        a = tax.id_of("a")
        assert tax.subtree_nodes(a) == frozenset({a, tax.id_of("c"), tax.id_of("d")})


class TestClosure:
    def test_closure_adds_ancestors(self):
        tax = small_taxonomy()
        c = tax.id_of("c")
        assert tax.closure([c]) == frozenset({c, tax.id_of("a"), ROOT})

    def test_closure_empty(self):
        assert small_taxonomy().closure([]) == frozenset()

    def test_is_ancestor_closed(self):
        tax = small_taxonomy()
        c = tax.id_of("c")
        a = tax.id_of("a")
        assert tax.is_ancestor_closed({ROOT, a, c})
        assert not tax.is_ancestor_closed({ROOT, c})
        assert not tax.is_ancestor_closed({c})
        assert tax.is_ancestor_closed(set())
        assert not tax.is_ancestor_closed({999})


class TestPreorder:
    def test_root_first(self):
        tax = small_taxonomy()
        assert tax.preorder(ROOT) == 0

    def test_preorder_respects_sibling_order(self):
        tax = small_taxonomy()
        # DFS: r, a, c, d, b, e
        order = sorted(tax.nodes(), key=tax.preorder)
        names = [tax.name(n) for n in order]
        assert names == ["r", "a", "c", "d", "b", "e"]

    def test_preorder_recomputed_after_add(self):
        tax = small_taxonomy()
        tax.preorder(ROOT)
        f = tax.add("f", parent=tax.id_of("a"))
        assert tax.preorder(f) < tax.preorder(tax.id_of("b"))


class TestRestrict:
    def test_restrict_keeps_closure(self):
        tax = small_taxonomy()
        c = tax.id_of("c")
        new, mapping = tax.restrict([c])
        assert new.num_nodes == 3  # r, a, c
        assert new.parent(mapping[c]) == mapping[tax.id_of("a")]
        assert new.name(mapping[c]) == "c"

    def test_restrict_preserves_names(self):
        tax = small_taxonomy()
        new, mapping = tax.restrict(list(tax.nodes()))
        assert new.num_nodes == tax.num_nodes
        for old, fresh in mapping.items():
            assert new.name(fresh) == tax.name(old)


class TestRandomSubtrees:
    def test_rooted_subtree_is_closed(self):
        tax = small_taxonomy()
        rng = random.Random(0)
        for size in (1, 2, 4, 6):
            nodes = tax.random_rooted_subtree(rng, size)
            assert tax.is_ancestor_closed(nodes)
            assert ROOT in nodes

    def test_focused_subtree_is_closed_and_focused(self):
        from repro.datasets import ccs_like_taxonomy

        tax = ccs_like_taxonomy(300)
        rng = random.Random(1)
        for _ in range(10):
            nodes = tax.random_focused_subtree(rng, 8, anchor_depth=2)
            assert tax.is_ancestor_closed(nodes)
            # at most anchor_depth nodes above the anchor => at most
            # anchor_depth + 1 branches touched near the top
            depth1 = [n for n in nodes if tax.depth(n) == 1]
            assert len(depth1) <= 1

    def test_zero_size(self):
        tax = small_taxonomy()
        assert tax.random_rooted_subtree(random.Random(0), 0) == frozenset()
        assert tax.random_focused_subtree(random.Random(0), 0) == frozenset()
