"""Tests for the effectiveness metrics (CPS, LDR, CPF, F1, stats)."""

import pytest

from repro.core import ProfiledGraph, pcs
from repro.datasets import fig1_profiled_graph, fig1_taxonomy
from repro.graph import Graph
from repro.metrics import (
    CommunityStats,
    average_community_count,
    average_f1,
    best_match_f1,
    community_pairwise_similarity,
    community_ptree_frequency,
    community_stats,
    f1_score,
    level_diversity_ratio,
)


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestCPS:
    def test_identical_profiles_give_one(self):
        tax = fig1_taxonomy()
        g = Graph([(0, 1), (1, 2), (2, 0)])
        pg2 = ProfiledGraph(g, tax, {v: ("ML",) for v in range(3)})
        assert community_pairwise_similarity(pg2, [frozenset({0, 1, 2})]) == 1.0

    def test_range(self, pg):
        value = community_pairwise_similarity(pg, [frozenset("ABDE")])
        assert 0.0 <= value <= 1.0

    def test_cohesive_higher_than_mixed(self, pg):
        # {B, C, D} share 4 labels; {A, B, G} share almost nothing.
        cohesive = community_pairwise_similarity(pg, [frozenset("BCD")])
        mixed = community_pairwise_similarity(pg, [frozenset("ABG")])
        assert cohesive > mixed

    def test_empty_collection(self, pg):
        assert community_pairwise_similarity(pg, []) == 0.0

    def test_singleton_community(self, pg):
        assert community_pairwise_similarity(pg, [frozenset("A")]) == 1.0


class TestLDR:
    def test_pcs_vs_itself_is_one(self, pg):
        result = list(pcs(pg, "D", 2))
        assert level_diversity_ratio(pg, "D", result, result) == pytest.approx(1.0)

    def test_acq_under_covers(self, pg):
        from repro.baselines import acq_query

        pcs_comms = list(pcs(pg, "D", 2))
        acq_comms = list(acq_query(pg, "D", 2))
        ldr = level_diversity_ratio(pg, "D", acq_comms, pcs_comms)
        assert 0.0 < ldr < 1.0  # ACQ misses the IS/DMS theme

    def test_empty_method_results(self, pg):
        pcs_comms = list(pcs(pg, "D", 2))
        assert level_diversity_ratio(pg, "D", [], pcs_comms) == 0.0

    def test_no_pcs_results(self, pg):
        assert level_diversity_ratio(pg, "D", [], []) == 0.0


class TestCPF:
    def test_perfect_coverage(self):
        tax = fig1_taxonomy()
        g = Graph([(0, 1), (1, 2), (2, 0)])
        pg2 = ProfiledGraph(g, tax, {v: ("ML", "AI") for v in range(3)})
        assert community_ptree_frequency(pg2, 0, [frozenset({0, 1, 2})]) == 1.0

    def test_range_and_monotonicity(self, pg):
        tight = community_ptree_frequency(pg, "D", [frozenset("BCD")])
        loose = community_ptree_frequency(pg, "D", [frozenset("ABCDE")])
        assert 0.0 <= loose <= tight <= 1.0

    def test_no_communities(self, pg):
        assert community_ptree_frequency(pg, "D", []) == 0.0

    def test_empty_query_profile(self):
        tax = fig1_taxonomy()
        g = Graph([(0, 1)])
        pg2 = ProfiledGraph(g, tax, {})
        assert community_ptree_frequency(pg2, 0, [frozenset({0, 1})]) == 0.0


class TestF1:
    def test_perfect_match(self):
        assert f1_score(frozenset({1, 2, 3}), frozenset({1, 2, 3})) == 1.0

    def test_disjoint(self):
        assert f1_score(frozenset({1}), frozenset({2})) == 0.0

    def test_partial(self):
        # precision 1/2, recall 1/3 -> F1 = 0.4
        assert f1_score(frozenset({1, 9}), frozenset({1, 2, 3})) == pytest.approx(0.4)

    def test_empty_sets(self):
        assert f1_score(frozenset(), frozenset({1})) == 0.0

    def test_best_match_prefers_circle_containing_q(self):
        truth = [frozenset({1, 2, 3}), frozenset({8, 9})]
        found = [frozenset({1, 2, 3})]
        assert best_match_f1(1, found, truth) == 1.0

    def test_best_match_falls_back_when_q_uncircled(self):
        truth = [frozenset({1, 2, 3})]
        found = [frozenset({1, 2})]
        assert best_match_f1(99, found, truth) == pytest.approx(0.8)

    def test_average_f1(self):
        truth = [frozenset({1, 2, 3})]
        per_query = [(1, [frozenset({1, 2, 3})]), (2, [frozenset({4})])]
        assert average_f1(per_query, truth) == pytest.approx(0.5)

    def test_average_f1_empty(self):
        assert average_f1([], []) == 0.0


class TestStats:
    def test_counts_and_sizes(self):
        per_query = [
            [frozenset({1, 2}), frozenset({1, 2, 3})],
            [frozenset({5})],
        ]
        stats = community_stats(per_query)
        assert isinstance(stats, CommunityStats)
        assert stats.num_queries == 2
        assert stats.total_communities == 3
        assert stats.average_communities_per_query == pytest.approx(1.5)
        assert stats.average_community_size == pytest.approx(2.0)
        assert stats.median_community_size == 2.0

    def test_empty(self):
        stats = community_stats([])
        assert stats.total_communities == 0
        assert stats.average_community_size == 0.0

    def test_average_count(self):
        assert average_community_count([[1, 2], [1]]) == pytest.approx(1.5)
        assert average_community_count([]) == 0.0
