"""Tests for metric variants (§5.3), relaxed PCS (§6) and keyword search."""

import pytest

from repro.core import (
    FractionalKCoreCohesion,
    METRIC_VARIANTS,
    degree_relaxed_pcs,
    keyword_communities,
    maximal_feasible_keyword_sets,
    pcs,
    similarity_filtered_graph,
    similarity_relaxed_pcs,
    variant_common_nodes,
    variant_common_paths,
    variant_common_subtree,
    variant_similarity,
)
from repro.datasets import fig1_profiled_graph
from repro.errors import InvalidInputError
from repro.graph import Graph, k_core_within


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestKeywordCommunities:
    def test_max_cardinality_only(self, pg):
        pairs = keyword_communities(pg.graph, pg.all_labels(), "D", 2)
        sizes = {len(kw) for kw, _ in pairs}
        assert sizes == {4}

    def test_empty_when_no_core(self, pg):
        assert keyword_communities(pg.graph, pg.all_labels(), "D", 5) == []

    def test_max_level_cap(self, pg):
        pairs = keyword_communities(pg.graph, pg.all_labels(), "D", 2, max_level=2)
        assert all(len(kw) <= 2 for kw, _ in pairs)

    def test_maximal_sets_include_both_themes(self, pg):
        pairs = maximal_feasible_keyword_sets(pg.graph, pg.all_labels(), "D", 2)
        communities = {members for _, members in pairs}
        assert frozenset("BCD") in communities
        assert frozenset("ADE") in communities

    def test_maximal_sets_are_maximal(self, pg):
        pairs = maximal_feasible_keyword_sets(pg.graph, pg.all_labels(), "D", 2)
        sets = [kw for kw, _ in pairs]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                assert i == j or not a < b


class TestMetricVariants:
    def test_registry_complete(self):
        assert set(METRIC_VARIANTS) == {"a", "b", "c", "d"}

    def test_variant_a_matches_acq(self, pg):
        result = variant_common_nodes(pg, "D", 2)
        assert len(result) == 1
        assert result[0].vertices == frozenset("BCD")

    def test_variant_b_paths(self, pg):
        result = variant_common_paths(pg, "D", 2)
        # leaves of T(D): ML, AI, DMS, HW; max feasible leaf set = {ML, AI}
        assert len(result) == 1
        assert result[0].vertices == frozenset("BCD")

    def test_variant_c_is_pcs(self, pg):
        result = variant_common_subtree(pg, "D", 2)
        expected = pcs(pg, "D", 2)
        assert {c.vertices for c in result} == {c.vertices for c in expected}
        assert result.method == "metric-c-subtree"

    def test_variant_d_single_community(self, pg):
        result = variant_similarity(pg, "D", 2, beta=0.2)
        assert len(result) <= 1
        if result:
            assert "D" in result[0].vertices

    def test_variant_d_bad_beta(self, pg):
        with pytest.raises(InvalidInputError):
            variant_similarity(pg, "D", 2, beta=1.5)

    def test_variants_report_true_common_subtree(self, pg):
        for key, fn in METRIC_VARIANTS.items():
            result = fn(pg, "D", 2)
            for community in result:
                common = None
                for v in community.vertices:
                    labels = pg.labels(v)
                    common = labels if common is None else common & labels
                assert community.subtree.nodes == common, key


class TestSimilarityRelaxation:
    def test_beta_zero_keeps_everything(self, pg):
        filtered = similarity_filtered_graph(pg, "D", 0.0)
        assert filtered.num_vertices == pg.num_vertices

    def test_beta_one_keeps_twins(self, pg):
        filtered = similarity_filtered_graph(pg, "B", 1.0)
        # B and C have identical profiles
        assert set(filtered.vertices()) == {"B", "C"}

    def test_relaxed_pcs_runs(self, pg):
        result = similarity_relaxed_pcs(pg, "D", 2, beta=0.3)
        assert "beta" in result.method
        for community in result:
            assert "D" in community.vertices

    def test_bad_beta(self, pg):
        with pytest.raises(InvalidInputError):
            similarity_filtered_graph(pg, "D", 2.0)


class TestDegreeRelaxation:
    def test_delta_one_equals_k_core(self, pg):
        model = FractionalKCoreCohesion(1.0)
        got = model.within(pg.graph, pg.graph.vertices(), 2, "D")
        expected = k_core_within(pg.graph, pg.graph.vertices(), 2, q="D")
        assert got == expected

    def test_delta_relaxes(self):
        # path 0-1-2-3: no 2-core, but with delta=0.5 half may have degree 1
        g = Graph([(0, 1), (1, 2), (2, 3)])
        strict = FractionalKCoreCohesion(1.0).within(g, g.vertices(), 2, 1)
        relaxed = FractionalKCoreCohesion(0.5).within(g, g.vertices(), 2, 1)
        assert strict == frozenset()
        assert 1 in relaxed and len(relaxed) >= 2

    def test_invalid_delta(self):
        with pytest.raises(InvalidInputError):
            FractionalKCoreCohesion(0.0)

    def test_relaxed_pcs_superset_of_strict(self, pg):
        strict = pcs(pg, "D", 2, method="incre")
        relaxed = degree_relaxed_pcs(pg, "D", 2, delta=0.6)
        # every strict community's vertex set is contained in some relaxed one
        for community in strict:
            assert any(
                community.vertices <= other.vertices or community.vertices == other.vertices
                for other in relaxed
            )

    def test_q_absent_returns_empty(self):
        g = Graph([(0, 1)])
        model = FractionalKCoreCohesion(0.5)
        assert model.within(g, [0, 1], 1, 99) == frozenset()
