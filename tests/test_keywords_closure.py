"""Extra tests for the intersection-closure keyword engine."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.keywords import (
    _intersection_closure,
    keyword_communities,
    maximal_feasible_keyword_sets,
)
from repro.graph import gnp_graph, k_core_within


def fs(*items):
    return frozenset(items)


class TestIntersectionClosure:
    def test_contains_inputs(self):
        patterns = [fs(1, 2, 3), fs(2, 3, 4), fs(3, 5)]
        closure = _intersection_closure(patterns)
        for p in patterns:
            assert p in closure

    def test_contains_pairwise_intersections(self):
        patterns = [fs(1, 2, 3), fs(2, 3, 4), fs(3, 5)]
        closure = set(_intersection_closure(patterns))
        assert fs(2, 3) in closure
        assert fs(3) in closure

    def test_sorted_by_size_descending(self):
        closure = _intersection_closure([fs(1, 2, 3), fs(2, 3), fs(3)])
        sizes = [len(s) for s in closure]
        assert sizes == sorted(sizes, reverse=True)

    def test_empty_patterns_skipped(self):
        assert _intersection_closure([fs(), fs(1)]) == [fs(1)]


def brute_force_max_keyword_sets(graph, keywords, q, k):
    """Exponential reference: try every subset of W(q)."""
    from itertools import combinations

    base = sorted(keywords.get(q, fs()))
    feasible = {}
    for r in range(1, len(base) + 1):
        for combo in combinations(base, r):
            s = frozenset(combo)
            members = [v for v in graph.vertices() if s <= keywords.get(v, fs())]
            community = k_core_within(graph, members, k, q=q)
            if community:
                feasible[s] = community
    if not feasible:
        return []
    best = max(len(s) for s in feasible)
    return sorted(
        ((s, c) for s, c in feasible.items() if len(s) == best),
        key=lambda item: tuple(sorted(map(repr, item[0]))),
    )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_maximum_sets_exact(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(14, 0.35, seed=seed)
        vocabulary = list(range(6))
        keywords = {
            v: frozenset(rng.sample(vocabulary, rng.randint(0, 4)))
            for v in range(14)
        }
        q = rng.randrange(14)
        k = rng.randint(1, 2)
        expected = brute_force_max_keyword_sets(g, keywords, q, k)
        got = keyword_communities(g, keywords, q, k)
        assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_maximal_sets_are_maximal_and_feasible(self, seed):
        rng = random.Random(seed + 100)
        g = gnp_graph(14, 0.35, seed=seed + 100)
        vocabulary = list(range(6))
        keywords = {
            v: frozenset(rng.sample(vocabulary, rng.randint(0, 4)))
            for v in range(14)
        }
        q = rng.randrange(14)
        pairs = maximal_feasible_keyword_sets(g, keywords, q, 1)
        sets = [s for s, _ in pairs]
        for i, a in enumerate(sets):
            for j, b in enumerate(sets):
                assert i == j or not a < b
        for s, community in pairs:
            assert q in community
            for v in community:
                assert s <= keywords.get(v, fs())


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 5000))
def test_property_keyword_engine_matches_brute_force(seed):
    rng = random.Random(seed)
    g = gnp_graph(10, 0.4, seed=seed)
    keywords = {
        v: frozenset(rng.sample(range(5), rng.randint(0, 3))) for v in range(10)
    }
    q = rng.randrange(10)
    expected = brute_force_max_keyword_sets(g, keywords, q, 1)
    got = keyword_communities(g, keywords, q, 1)
    assert got == expected
