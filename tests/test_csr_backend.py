"""Differential tests: the CSR backend must be invisible except for speed.

Every kernel that :mod:`repro.graph.csr` rewrites in flat arrays —
core decomposition, restricted decomposition, ``k_core_within``,
connected components — is compared against the pure-object implementation
on the same inputs, and full ``pcs`` answers are compared across backends
on all six methods over the fig1, synthetic and ego datasets. Hypothesis
drives randomised parity checks plus an interning round-trip under vertex
removal/re-add (the CSR cache must never serve stale adjacency).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import as_vertex_subtree_map, pcs
from repro.core.search import ALL_METHODS
from repro.datasets import (
    SyntheticConfig,
    fig1_profiled_graph,
    load_ego_network,
    synthetic_profiled_graph,
)
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.graph import Graph, core_numbers, gnp_graph, k_core_within
from repro.graph.core import core_numbers_within
from repro.graph.csr import (
    BACKENDS,
    CSRGraph,
    active_backend,
    backend_override,
    csr_view,
    numpy_available,
)

#: Backends under test: "numpy" joins in when the library is installed.
PARITY_BACKENDS = tuple(
    b for b in BACKENDS if b != "object" and (b != "numpy" or numpy_available())
)


def canonical(result):
    """Backend-independent shape of a PCS answer."""
    return {t: frozenset(c) for t, c in as_vertex_subtree_map(result).items()}


def random_graph(seed: int, n: int = 40, p: float = 0.15) -> Graph:
    """A small random graph with string vertices (exercises interning)."""
    g = gnp_graph(n, p, seed=seed)
    out = Graph()
    for v in g.vertex_set():
        out.add_vertex(f"v{v}")
    for u, v in g.edges():
        out.add_edge(f"v{u}", f"v{v}")
    return out


class TestKernelParity:
    """Array kernels agree with the object implementations exactly."""

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_core_numbers(self, backend, seed):
        g = random_graph(seed)
        with backend_override("object"):
            expected = core_numbers(g)
        with backend_override(backend):
            assert core_numbers(g) == expected

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_core_numbers_within(self, backend, seed):
        g = random_graph(seed)
        rng = random.Random(seed)
        members = rng.sample(sorted(g.vertex_set()), g.num_vertices // 2)
        with backend_override("object"):
            expected = core_numbers_within(g, members)
        with backend_override(backend):
            assert core_numbers_within(g, members) == expected

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_k_core_within(self, backend, seed):
        g = random_graph(seed)
        rng = random.Random(seed ^ 0xC0FFEE)
        cand = rng.sample(sorted(g.vertex_set()), 3 * g.num_vertices // 4)
        for k in (1, 2, 3):
            q = cand[0]
            with backend_override("object"):
                expected = k_core_within(g, cand, k, q=q)
            with backend_override(backend):
                assert k_core_within(g, cand, k, q=q) == expected

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_component_of(self, backend, seed):
        g = random_graph(seed, n=30, p=0.08)
        rng = random.Random(seed)
        within = rng.sample(sorted(g.vertex_set()), 20)
        source = within[0]
        with backend_override("object"):
            full = g.component_of(source)
            restricted = g.component_of(source, within)
        with backend_override(backend):
            csr_view(g)  # ensure the fast path has a view to hit
            assert g.component_of(source) == full
            assert g.component_of(source, within) == restricted


class TestPcsDifferential:
    """Full pcs answers are byte-identical across backends, all 6 methods."""

    @staticmethod
    def answers(make_pg, queries, k):
        out = {}
        for backend in ("object",) + PARITY_BACKENDS:
            with backend_override(backend):
                pg = make_pg()
                out[backend] = {
                    (m, q): canonical(pcs(pg, q, k, method=m))
                    for m in ALL_METHODS
                    for q in queries
                }
        reference = out.pop("object")
        return reference, out

    def test_fig1(self):
        reference, others = self.answers(
            fig1_profiled_graph, queries=("A", "D", "H"), k=2
        )
        for backend, got in others.items():
            assert got == reference, f"{backend} diverged on fig1"

    def test_synthetic(self):
        tax = synthetic_taxonomy(120, seed=7)
        config = SyntheticConfig(
            num_vertices=120,
            num_communities=8,
            avg_community_size=14,
            theme_size=5,
            tokens_per_vertex=2,
        )

        def make_pg():
            pg, _ = synthetic_profiled_graph(tax, config, seed=7)
            return pg

        queries = random.Random(7).sample(sorted(make_pg().vertices()), 3)
        reference, others = self.answers(make_pg, queries, k=3)
        assert any(reference.values()), "synthetic instance answered nothing"
        for backend, got in others.items():
            assert got == reference, f"{backend} diverged on synthetic"

    def test_ego(self):
        def make_pg():
            pg, _ = load_ego_network("fb3", seed=2)
            return pg

        queries = sorted(make_pg().vertices())[:2]
        reference, others = self.answers(make_pg, queries, k=3)
        for backend, got in others.items():
            assert got == reference, f"{backend} diverged on ego fb3"


class TestBackendMechanics:
    """Selection, caching and invalidation of the CSR view."""

    def test_csr_view_absent_under_object_backend(self):
        g = random_graph(0)
        with backend_override("object"):
            assert csr_view(g) is None

    def test_csr_view_cached_and_invalidated(self):
        g = random_graph(1)
        with backend_override("csr"):
            view = csr_view(g)
            assert isinstance(view, CSRGraph)
            assert csr_view(g) is view  # cached
            g.add_edge("v0", "new-vertex")
            rebuilt = csr_view(g)
            assert rebuilt is not view  # mutation invalidated the cache
            assert "new-vertex" in rebuilt.index_of

    def test_override_nesting_restores(self):
        with backend_override("object"):
            assert active_backend() == "object"
            with backend_override("csr"):
                assert active_backend() == "csr"
            assert active_backend() == "object"


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(0, 10**6), st.integers(5, 40), st.floats(0.05, 0.5))
def test_property_core_numbers_parity(seed, n, p):
    """Hypothesis: core decompositions agree on arbitrary random graphs."""
    g = random_graph(seed, n=n, p=p)
    with backend_override("object"):
        expected = core_numbers(g)
    for backend in PARITY_BACKENDS:
        with backend_override(backend):
            assert core_numbers(g) == expected


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.integers(0, 10**6),
    st.integers(5, 40),
    st.floats(0.05, 0.5),
    st.integers(1, 4),
)
def test_property_k_core_within_parity(seed, n, p, k):
    """Hypothesis: restricted k-cores agree on arbitrary candidate sets."""
    g = random_graph(seed, n=n, p=p)
    rng = random.Random(seed)
    cand = rng.sample(sorted(g.vertex_set()), max(2, n // 2))
    q = rng.choice(cand)
    with backend_override("object"):
        expected = k_core_within(g, cand, k, q=q)
    for backend in PARITY_BACKENDS:
        with backend_override(backend):
            assert k_core_within(g, cand, k, q=q) == expected


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.integers(0, 10**6), st.integers(6, 25))
def test_property_interning_roundtrip_under_mutation(seed, n):
    """Remove a vertex, re-add it: the rebuilt CSR serves fresh adjacency.

    The intern table is rebuilt per CSR construction, so removing and
    re-adding a vertex (with different edges) must never leak the old
    neighbourhood through a stale cache.
    """
    g = random_graph(seed, n=n, p=0.3)
    rng = random.Random(seed)
    victim = rng.choice(sorted(g.vertex_set()))
    with backend_override("csr"):
        before = csr_view(g)
        assert victim in before.index_of
        old_neighbours = set(g.neighbors(victim))
        g.remove_vertex(victim)
        after_removal = csr_view(g)
        assert after_removal is not before
        assert victim not in after_removal.index_of
        assert core_numbers(g) == _object_cores(g)
        survivors = sorted(g.vertex_set())
        g.add_vertex(victim)
        new_neighbours = set(rng.sample(survivors, min(3, len(survivors))))
        for u in new_neighbours:
            g.add_edge(victim, u)
        rebuilt = csr_view(g)
        idx = rebuilt.index_of[victim]
        served = {
            rebuilt.ids[rebuilt.indices[i]]
            for i in range(rebuilt.indptr[idx], rebuilt.indptr[idx + 1])
        }
        assert served == new_neighbours
        assert served == set(g.neighbors(victim))
        # The old neighbourhood must not bleed through unless re-chosen.
        assert not (served - new_neighbours) & (old_neighbours - new_neighbours)


def _object_cores(g: Graph):
    """Object-backend core numbers for cross-checking inside a CSR block."""
    with backend_override("object"):
        return core_numbers(g)
