"""Crash/resume gauntlet for standing subscriptions.

SIGKILL a durable ``repro serve --data-dir`` subprocess mid-stream and
assert the reboot serves the subscription tier as if the crash never
happened:

* a subscriber that saw events up to cursor ``C`` before the crash
  reconnects with ``last_event_id=C`` and receives **exactly** the diffs
  it missed — contiguous event ids, no gaps, no duplicates — because
  every diff was fsync'd to ``subscriptions.jsonl`` before the update
  that caused it was acknowledged;
* composing snapshot + received diffs equals a shadow
  :class:`~repro.api.CommunityService` replay at every acknowledged
  version;
* a *clean* shutdown (SIGINT) compacts the journal, so a stale cursor
  resumes as a single ``reset`` re-baseline instead of a replayed tail —
  the documented gap semantics, exercised end-to-end.
"""

import pytest

from repro.api import CommunityService, Subscription
from repro.datasets import fig1_profiled_graph
from repro.server import ServerClient

from tests.test_durability import _kill_dash_nine, _shutdown_clean, _start_server

#: Watched query: B@k=2 starts at {B, C, D} (the paper's Fig. 2 PC).
WATCH = ("B", 2)

#: Batch the subscriber *sees* before the crash (Z1 joins → diff 2).
PRE_BATCH = [
    {"op": "add_vertex", "u": "Z1", "labels": ["ML", "AI"]},
    {"op": "add_edge", "u": "Z1", "v": "B"},
    {"op": "add_edge", "u": "Z1", "v": "C"},
    {"op": "add_edge", "u": "Z1", "v": "D"},
]

#: Batches applied while nobody is streaming — each changes B's watched
#: set, so each journals exactly one diff the subscriber must not lose.
MISSED_BATCHES = [
    [{"op": "remove_vertex", "u": "Z1"}],
    [
        {"op": "add_vertex", "u": "Z2", "labels": ["ML", "AI"]},
        {"op": "add_edge", "u": "Z2", "v": "B"},
        {"op": "add_edge", "u": "Z2", "v": "C"},
        {"op": "add_edge", "u": "Z2", "v": "D"},
    ],
    [{"op": "remove_vertex", "u": "Z2"}],
]

#: Applied after the reboot, so the resumed stream also carries a
#: post-crash live diff, not just the replayed backlog.
SENTINEL_BATCH = [
    {"op": "add_vertex", "u": "Z3", "labels": ["ML", "AI"]},
    {"op": "add_edge", "u": "Z3", "v": "B"},
    {"op": "add_edge", "u": "Z3", "v": "C"},
    {"op": "add_edge", "u": "Z3", "v": "D"},
]


def _watched(service: CommunityService) -> frozenset:
    vertex, k = WATCH
    result = service.explorer.explore(vertex, k=k)
    members: set = set()
    for community in result.communities:
        members |= community.vertices
    return frozenset(members)


def _shadow_by_version(batch_groups):
    """``{version: watched set}`` replaying the same batch grouping."""
    expected = {}
    with CommunityService(fig1_profiled_graph()) as shadow:
        expected[shadow.pg.version] = _watched(shadow)
        for batch in batch_groups:
            shadow.apply_updates(batch)
            expected[shadow.pg.version] = _watched(shadow)
    return expected


@pytest.mark.subscriptions
@pytest.mark.durability
def test_sigkill_then_resume_receives_exactly_missed_diffs(tmp_path):
    data_dir = tmp_path / "data"
    proc, port = _start_server(data_dir)
    try:
        client = ServerClient("127.0.0.1", port)
        sub, snapshot = client.subscribe(Subscription.new(*WATCH))
        assert snapshot.reset and snapshot.event_id == 1

        client.update(PRE_BATCH)
        seen = client.poll(sub.id, last_event_id=snapshot.event_id, timeout=10)
        assert [d.event_id for d in seen] == [2], "pre-crash diff not delivered"
        cursor = seen[-1].event_id

        for batch in MISSED_BATCHES:
            client.update(batch)  # acked ⇒ journalled, but nobody streams
        client.close()
    finally:
        _kill_dash_nine(proc)

    proc, port = _start_server(data_dir)
    try:
        client = ServerClient("127.0.0.1", port)
        receipt = client.update(SENTINEL_BATCH)["receipt"]
        sentinel_version = receipt["version"]

        received = []
        for diff in client.subscribe_stream(sub.id, last_event_id=cursor):
            received.append(diff)
            if diff.graph_version >= sentinel_version:
                break
        client.close()

        # Exactly the missed diffs plus the post-reboot sentinel diff:
        # contiguous ids from the cursor, nothing replayed twice, nothing
        # dropped, no reset (the journal retained the full tail).
        ids = [d.event_id for d in received]
        assert ids == list(range(cursor + 1, cursor + 1 + len(ids))), (
            f"resume returned non-contiguous event ids {ids} after cursor {cursor}"
        )
        assert len(ids) == len(MISSED_BATCHES) + 1, (
            f"expected one diff per missed membership change plus the "
            f"sentinel, got {ids}"
        )
        assert not any(d.reset for d in received), (
            "a retained tail must replay verbatim, not re-baseline"
        )

        # Composing snapshot + pre-crash diff + resumed tail tracks the
        # shadow replay at every version a diff is tagged with.
        expected = _shadow_by_version(
            [PRE_BATCH, *MISSED_BATCHES, SENTINEL_BATCH]
        )
        composed = snapshot.apply_to(frozenset())
        for diff in [*seen, *received]:
            composed = diff.apply_to(composed)
            assert composed == expected[diff.graph_version], (
                f"composed membership diverges from the shadow at "
                f"version {diff.graph_version}"
            )
        assert composed == expected[max(expected)]
    finally:
        _kill_dash_nine(proc)


@pytest.mark.subscriptions
@pytest.mark.durability
def test_clean_shutdown_compacts_then_stale_cursor_resets(tmp_path):
    data_dir = tmp_path / "data"
    proc, port = _start_server(data_dir)
    try:
        client = ServerClient("127.0.0.1", port)
        sub, snapshot = client.subscribe(Subscription.new(*WATCH))
        client.update(PRE_BATCH)
        for batch in MISSED_BATCHES:
            client.update(batch)
        client.close()
    finally:
        _shutdown_clean(proc)

    # The drain checkpointed: the journal is one register entry whose
    # snapshot carries the final membership at the final event id.
    log_lines = [
        line
        for line in (data_dir / "subscriptions.jsonl").read_text().splitlines()
        if line.strip()
    ]
    assert len(log_lines) == 1 and '"register"' in log_lines[0], log_lines

    proc, port = _start_server(data_dir)
    try:
        client = ServerClient("127.0.0.1", port)
        # Cursor 1 predates the compacted window → a single reset
        # re-baseline carrying the full current membership.
        events = client.poll(sub.id, last_event_id=1, timeout=10)
        assert len(events) == 1 and events[0].reset, events
        expected = _shadow_by_version([PRE_BATCH, *MISSED_BATCHES])
        assert frozenset(events[0].joined) == expected[max(expected)]
        # The compacted snapshot preserved event-id continuity: the reset
        # sits at the last id the dead server assigned, so a *current*
        # cursor still long-polls quietly instead of re-baselining.
        assert events[0].event_id == 1 + 1 + len(MISSED_BATCHES)
        assert client.poll(sub.id, last_event_id=events[0].event_id, timeout=0) == []
        client.close()
    finally:
        _kill_dash_nine(proc)
