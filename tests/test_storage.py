"""Unit tests for repro.storage: snapshot codec, WAL, store, wiring.

The golden-file format-compatibility gate lives at the bottom
(``TestGoldenSnapshot``): it pins the version-1 byte encoding against a
checked-in artifact, so any byte-level format change must bump
``FORMAT_VERSION`` (and add a new golden) or fail CI.
"""

import struct
from pathlib import Path

import pytest

from repro.core.profiled_graph import ProfiledGraph
from repro.api.service import CommunityService
from repro.datasets import fig1_profiled_graph, load_dataset
from repro.engine.explorer import CommunityExplorer
from repro.engine.updates import GraphUpdate, apply_update
from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph.graph import Graph
from repro.index.cltree import CLTree
from repro.index.cptree import CPTree
from repro.ptree.taxonomy import Taxonomy
from repro.server.gateway import CommunityGateway
from repro.storage import (
    FORMAT_VERSION,
    MAGIC,
    GraphStore,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    StorageError,
    WalError,
    WalReplayError,
    WriteAheadLog,
    encode_payload,
    load_snapshot,
    preview_updates,
    save_snapshot,
    verify_digest,
)

GOLDEN = Path(__file__).parent / "data" / "snapshot_v1.bin"


@pytest.fixture
def fig1():
    return fig1_profiled_graph()


def assert_graphs_equal(a: ProfiledGraph, b: ProfiledGraph) -> None:
    """Topology, labels, taxonomy and version must all agree."""
    assert a.version == b.version
    assert a.graph.vertex_set() == b.graph.vertex_set()
    assert a.num_edges == b.num_edges
    for v in a.vertices():
        assert a.graph.adjacency()[v] == b.graph.adjacency()[v]
        assert a.labels(v) == b.labels(v)
    assert a.taxonomy.num_nodes == b.taxonomy.num_nodes
    for node in range(a.taxonomy.num_nodes):
        assert a.taxonomy.name(node) == b.taxonomy.name(node)
        assert a.taxonomy.parent(node) == b.taxonomy.parent(node)


def assert_index_equivalent(index: CPTree, reference: ProfiledGraph) -> None:
    """``index`` must answer exactly like a fresh build over ``reference``."""
    fresh = CPTree(reference.graph, reference.all_labels(),
                   reference.taxonomy, validate=False)
    assert set(index.labels()) == set(fresh.labels())
    for label in fresh.labels():
        mine, theirs = index.node(label), fresh.node(label)
        assert mine.vertices == theirs.vertices, label
        for q in sorted(mine.vertices, key=repr)[:4]:
            for k in (1, 2, 3):
                assert mine.cltree.kcore_vertices(q, k) == \
                    theirs.cltree.kcore_vertices(q, k), (label, q, k)


# ----------------------------------------------------------------------
# snapshot codec
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    def test_graph_and_index_round_trip(self, fig1, tmp_path):
        fig1.index()
        path = tmp_path / "snap.bin"
        info = save_snapshot(fig1, path)
        assert info.format_version == FORMAT_VERSION
        assert info.has_index and info.index_labels > 0
        loaded = load_snapshot(path)
        assert_graphs_equal(fig1, loaded)
        assert loaded.has_index()
        assert_index_equivalent(loaded.index(), fig1)

    def test_round_trip_without_index(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        info = save_snapshot(fig1, path, include_index=False)
        assert not info.has_index and info.index_labels == 0
        loaded = load_snapshot(path)
        assert not loaded.has_index()
        assert_graphs_equal(fig1, loaded)

    def test_built_but_excluded_index(self, fig1, tmp_path):
        fig1.index()
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path, include_index=False)
        assert not load_snapshot(path).has_index()

    def test_version_travels(self, fig1, tmp_path):
        fig1.add_edge("A", "Z")
        fig1.remove_edge("A", "Z")
        assert fig1.version == 2  # add (one bump incl. new vertex) + remove
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        assert load_snapshot(path).version == 2

    def test_int_vertices_round_trip(self, tmp_path):
        pg = load_dataset("acmdl")
        pg.index()
        path = tmp_path / "snap.bin"
        save_snapshot(pg, path)
        loaded = load_snapshot(path)
        assert_graphs_equal(pg, loaded)
        assert_index_equivalent(loaded.index(), pg)

    def test_empty_profile_and_isolated_vertices(self, tmp_path):
        tax = Taxonomy()
        tax.add("X", parent=0)
        g = Graph()
        g.add_vertex("lonely")
        g.add_edge("a", "b")
        pg = ProfiledGraph(g, tax, {"a": [1]})
        path = tmp_path / "snap.bin"
        save_snapshot(pg, path)
        loaded = load_snapshot(path)
        assert_graphs_equal(pg, loaded)
        assert loaded.labels("lonely") == frozenset()

    def test_deterministic_bytes(self, fig1, tmp_path):
        fig1.index()
        one = encode_payload(fig1, fig1.index())
        two = encode_payload(fig1, fig1.index())
        assert one == two
        other = fig1_profiled_graph()
        other.index()
        assert encode_payload(other, other.index()) == one

    def test_save_folds_pending_repairs(self, fig1, tmp_path):
        fig1.index()
        fig1.remove_edge("C", "D")
        assert fig1.pending_repair_labels > 0
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        loaded = load_snapshot(path)
        assert_index_equivalent(loaded.index(), fig1)

    def test_atomic_save_leaves_no_tmp(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        save_snapshot(fig1, path)  # overwrite is fine
        assert [p.name for p in tmp_path.iterdir()] == ["snap.bin"]

    def test_unsupported_vertex_type_refused(self, tmp_path):
        tax = Taxonomy()
        g = Graph()
        g.add_edge((1, 2), (3, 4))
        pg = ProfiledGraph(g, tax, {})
        with pytest.raises(SnapshotError):
            save_snapshot(pg, tmp_path / "snap.bin")

    def test_bool_vertex_refused(self, tmp_path):
        # bool is an int subclass; type() checks must not let it alias 0/1.
        tax = Taxonomy()
        g = Graph()
        g.add_vertex(True)
        pg = ProfiledGraph(g, tax, {})
        with pytest.raises(SnapshotError):
            save_snapshot(pg, tmp_path / "snap.bin")


class TestSnapshotVerification:
    def test_verify_digest_reports_info(self, fig1, tmp_path):
        fig1.index()
        path = tmp_path / "snap.bin"
        written = save_snapshot(fig1, path)
        info = verify_digest(path)
        assert info == written
        assert info.num_vertices == fig1.num_vertices
        assert info.graph_version == fig1.version

    def test_flipped_payload_byte_detected(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(raw)
        with pytest.raises(SnapshotCorruptError, match="digest"):
            load_snapshot(path)
        with pytest.raises(SnapshotCorruptError):
            verify_digest(path)

    def test_load_without_verify_skips_digest(self, fig1, tmp_path):
        # verify=False trusts the digest; structural decoding still runs.
        fig1.index()
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        assert_graphs_equal(fig1, load_snapshot(path, verify=False))

    def test_unknown_format_version_refused(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(raw)
        with pytest.raises(SnapshotVersionError, match="version"):
            load_snapshot(path)

    def test_bad_magic_refused(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(raw)
        with pytest.raises(SnapshotCorruptError, match="magic"):
            load_snapshot(path)

    def test_truncated_file_refused(self, fig1, tmp_path):
        path = tmp_path / "snap.bin"
        save_snapshot(fig1, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorruptError):
            load_snapshot(path)
        path.write_bytes(raw[:10])
        with pytest.raises(SnapshotCorruptError, match="header"):
            load_snapshot(path)


class TestCLTreeFromArrays:
    def test_reassembly_answers_like_the_original(self):
        pg = fig1_profiled_graph()
        tree = CLTree(pg.graph)
        rows = []
        index_of = {}
        for node in tree.nodes():
            index_of[id(node)] = len(rows)
            parent = index_of[id(node.parent)] if node.parent is not None else None
            rows.append((node.core, parent, list(node.vertices)))
        rebuilt = CLTree.from_arrays(rows)
        for v in pg.vertices():
            assert rebuilt.core_number(v) == tree.core_number(v)
            for k in (1, 2, 3, 4):
                assert rebuilt.kcore_vertices(v, k) == tree.kcore_vertices(v, k)

    def test_empty_rows_give_empty_tree(self):
        tree = CLTree.from_arrays([])
        assert tree.num_vertices == 0
        assert tree.kcore_vertices("q", 1) == frozenset()


# ----------------------------------------------------------------------
# preview
# ----------------------------------------------------------------------
class TestPreviewUpdates:
    def test_matches_real_apply_and_is_pure(self, fig1):
        ops = [
            GraphUpdate("add_edge", "A", "Z"),       # new vertex + edge: 1 bump
            GraphUpdate("add_edge", "A", "Z"),       # duplicate: no-op
            GraphUpdate("add_vertex", "W", labels=["ML"]),
            GraphUpdate("add_vertex", "W"),          # duplicate: no-op
            GraphUpdate("set_profile", "W", labels=["ML"]),  # unchanged: no-op
            GraphUpdate("set_profile", "W", labels=["AI"]),
            GraphUpdate("remove_edge", "A", "Z"),
            GraphUpdate("remove_edge", "A", "Z"),    # already gone: no-op
            GraphUpdate("remove_vertex", "Z"),
        ]
        before = fig1.version
        effective, predicted = preview_updates(fig1, ops)
        assert fig1.version == before  # pure
        for op in ops:
            apply_update(fig1, op)
        assert fig1.version == predicted
        assert predicted == before + effective

    def test_remove_vertex_kills_overlay_edges(self, fig1):
        ops = [
            GraphUpdate("add_edge", "A", "Z"),
            GraphUpdate("remove_vertex", "Z"),
            GraphUpdate("remove_edge", "A", "Z"),  # edge died with Z: no-op
        ]
        effective, predicted = preview_updates(fig1, ops)
        for op in ops:
            apply_update(fig1, op)
        assert fig1.version == predicted

    def test_remove_vertex_hides_base_edges(self, fig1):
        ops = [
            GraphUpdate("remove_vertex", "A"),
            GraphUpdate("add_vertex", "A"),
            # A is back but its old edges are not:
            GraphUpdate("add_edge", "A", "B"),
        ]
        effective, predicted = preview_updates(fig1, ops)
        assert effective == 3
        for op in ops:
            apply_update(fig1, op)
        assert fig1.version == predicted

    def test_validation_errors_surface_before_logging(self, fig1):
        with pytest.raises(VertexNotFoundError):
            preview_updates(fig1, [GraphUpdate("remove_vertex", "missing")])
        with pytest.raises(VertexNotFoundError):
            preview_updates(fig1, [GraphUpdate("set_profile", "missing", labels=[])])
        with pytest.raises(InvalidInputError):
            preview_updates(fig1, [GraphUpdate("add_edge", "A", "A")])


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_and_replay(self, fig1, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        shadow = fig1_profiled_graph()
        batches = [
            [GraphUpdate("add_edge", "A", "Z")],
            [GraphUpdate("set_profile", "Z", labels=["DMS"]),
             GraphUpdate("remove_edge", "C", "D")],
        ]
        for batch in batches:
            _, predicted = preview_updates(fig1, batch)
            wal.append(fig1.version, predicted, batch)
            for op in batch:
                apply_update(fig1, op)
        assert wal.num_records == 2
        assert wal.last_version == fig1.version
        replayed = wal.replay_into(shadow)
        assert replayed == 2
        assert_graphs_equal(fig1, shadow)
        wal.close()

    def test_replay_skips_records_covered_by_snapshot(self, fig1, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(0, 1, [GraphUpdate("add_edge", "A", "Z")])
        wal.append(1, 2, [GraphUpdate("remove_edge", "A", "Z")])
        apply_update(fig1, GraphUpdate("add_edge", "A", "Z"))
        assert fig1.version == 1  # as if restored from a snapshot at v1
        assert wal.replay_into(fig1) == 1
        assert fig1.version == 2
        wal.close()

    def test_replay_refuses_gaps(self, fig1, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(5, 6, [GraphUpdate("add_edge", "A", "Z")])
        with pytest.raises(WalReplayError, match="version"):
            wal.replay_into(fig1)
        wal.close()

    def test_append_refuses_rewinds(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(0, 2, [GraphUpdate("add_edge", 1, 2)])
        with pytest.raises(WalError, match="precedes"):
            wal.append(1, 2, [GraphUpdate("add_edge", 1, 3)])
        with pytest.raises(WalError, match="precedes"):
            wal.append(3, 2, [GraphUpdate("add_edge", 1, 3)])
        wal.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, 1, [GraphUpdate("add_edge", 1, 2)])
        wal.append(1, 2, [GraphUpdate("add_edge", 2, 3)])
        wal.close()
        intact = path.read_bytes()
        # Crash mid-append: half a frame of garbage after the good records.
        path.write_bytes(intact + b"\x99\x00\x00\x00XX")
        reopened = WriteAheadLog(path)
        assert reopened.num_records == 2
        assert reopened.dropped_bytes == 6
        assert path.read_bytes() == intact
        # And the reopened log keeps appending cleanly.
        reopened.append(2, 3, [GraphUpdate("add_edge", 3, 4)])
        assert reopened.num_records == 3
        reopened.close()

    def test_corrupt_payload_counts_as_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, 1, [GraphUpdate("add_edge", 1, 2)])
        wal.append(1, 2, [GraphUpdate("add_edge", 2, 3)])
        wal.close()
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # scramble the last record's payload
        path.write_bytes(raw)
        reopened = WriteAheadLog(path)
        assert reopened.num_records == 1
        assert reopened.dropped_bytes > 0
        reopened.close()

    def test_truncate_clears_everything(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(0, 1, [GraphUpdate("add_edge", 1, 2)])
        wal.truncate()
        assert wal.num_records == 0
        assert wal.last_version is None
        assert path.stat().st_size == 0
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(0, 1, [GraphUpdate("add_edge", 1, 2)])

    def test_updates_survive_json_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        original = [GraphUpdate("add_vertex", "v", labels=["ML", 3]),
                    GraphUpdate("add_edge", 1, 2)]
        wal.append(0, 2, original)
        wal.close()
        record = WriteAheadLog(tmp_path / "wal.log").records()[0]
        assert list(record.updates) == original


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_boot_needs_snapshot_or_seed(self, tmp_path):
        with GraphStore(tmp_path) as store:
            with pytest.raises(StorageError):
                store.boot()

    def test_cold_boot_then_warm_boot(self, fig1, tmp_path):
        with GraphStore(tmp_path) as store:
            pg, report = store.boot(fallback=fig1)
            assert report.source == "cold"
            assert report.snapshot_version is None
            pg.index()
            store.snapshot(pg)
        with GraphStore(tmp_path) as store:
            pg2, report2 = store.boot()
            assert report2.source == "snapshot"
            assert report2.index_loaded
            assert_graphs_equal(pg, pg2)

    def test_factory_fallback_only_called_when_cold(self, fig1, tmp_path):
        calls = []

        def factory():
            calls.append(1)
            return fig1_profiled_graph()

        with GraphStore(tmp_path) as store:
            pg, _ = store.boot(fallback=factory)
            assert calls == [1]
            store.snapshot(pg)
        with GraphStore(tmp_path) as store:
            store.boot(fallback=factory)
            assert calls == [1]  # warm boot never built the seed

    def test_snapshot_truncates_wal(self, fig1, tmp_path):
        with GraphStore(tmp_path) as store:
            pg, _ = store.boot(fallback=fig1)
            batch = [GraphUpdate("add_edge", "A", "Z")]
            _, predicted = preview_updates(pg, batch)
            store.wal.append(pg.version, predicted, batch)
            apply_update(pg, batch[0])
            assert store.wal.num_records == 1
            store.snapshot(pg)
            assert store.wal.num_records == 0
        with GraphStore(tmp_path) as store:
            pg2, report = store.boot()
            assert report.replayed_records == 0
            assert pg2.version == 1

    def test_crash_between_snapshot_and_truncate(self, fig1, tmp_path):
        # Simulate: snapshot written, WAL truncate never happened. Replay
        # must skip the stale record instead of double-applying it.
        with GraphStore(tmp_path) as store:
            pg, _ = store.boot(fallback=fig1)
            batch = [GraphUpdate("add_edge", "A", "Z")]
            _, predicted = preview_updates(pg, batch)
            store.wal.append(pg.version, predicted, batch)
            apply_update(pg, batch[0])
            save_snapshot(pg, store.snapshot_path)  # no truncate
        with GraphStore(tmp_path) as store:
            pg2, report = store.boot()
            assert report.replayed_records == 0
            assert pg2.version == 1
            assert pg2.graph.has_edge("A", "Z")

    def test_compact_folds_wal_into_snapshot(self, fig1, tmp_path):
        with GraphStore(tmp_path) as store:
            pg, _ = store.boot(fallback=fig1)
            batch = [GraphUpdate("add_edge", "A", "Z")]
            _, predicted = preview_updates(pg, batch)
            store.wal.append(pg.version, predicted, batch)
            # crash before the in-memory graph ever got snapshotted
        with GraphStore(tmp_path) as store:
            info, report = store.compact(fallback=fig1_profiled_graph)
            assert report.replayed_records == 1
            assert info.graph_version == 1
            assert info.has_index
            assert store.wal.num_records == 0
        with GraphStore(tmp_path) as store:
            pg2, report2 = store.boot()
            assert report2.source == "snapshot"
            assert pg2.graph.has_edge("A", "Z")


# ----------------------------------------------------------------------
# service + gateway wiring
# ----------------------------------------------------------------------
class TestServiceStorage:
    def test_acknowledged_updates_survive_a_new_session(self, fig1, tmp_path):
        service = CommunityService(fig1, storage_dir=tmp_path)
        receipt = service.apply_updates([GraphUpdate("add_edge", "A", "Z")])
        assert receipt.version == 1
        assert service.storage.wal.num_records == 1
        service.close()  # no snapshot: recovery is WAL-only
        reborn = CommunityService(fig1_profiled_graph(), storage_dir=tmp_path)
        assert reborn.boot_report.source == "cold"
        assert reborn.boot_report.replayed_records == 1
        assert reborn.pg.version == 1
        assert reborn.pg.graph.has_edge("A", "Z")
        reborn.close()

    def test_snapshot_checkpoint_makes_boot_warm(self, fig1, tmp_path):
        service = CommunityService(fig1, storage_dir=tmp_path)
        service.apply_updates([GraphUpdate("add_edge", "A", "Z")])
        service.warm()
        info = service.snapshot()
        assert info.graph_version == 1
        assert service.storage.wal.num_records == 0
        service.close()
        reborn = CommunityService(fig1_profiled_graph(), storage_dir=tmp_path)
        assert reborn.boot_report.source == "snapshot"
        assert reborn.boot_report.index_loaded
        assert reborn.pg.version == 1
        reborn.close()

    def test_rejected_batch_is_not_logged(self, fig1, tmp_path):
        service = CommunityService(fig1, storage_dir=tmp_path)
        with pytest.raises(VertexNotFoundError):
            service.apply_updates([
                GraphUpdate("add_edge", "A", "Z"),
                GraphUpdate("remove_vertex", "missing"),
            ])
        assert service.storage.wal.num_records == 0
        assert service.pg.version == 0  # nothing half-applied either
        service.close()

    def test_memory_only_session_has_no_storage(self, fig1):
        service = CommunityService(fig1)
        assert service.storage is None
        assert service.boot_report is None
        with pytest.raises(InvalidInputError, match="storage_dir"):
            service.snapshot()

    def test_adopted_explorer_cannot_take_storage_dir(self, fig1, tmp_path):
        explorer = CommunityExplorer(fig1)
        with pytest.raises(InvalidInputError, match="cold seed"):
            CommunityService(explorer, storage_dir=tmp_path)


class TestGatewayDurability:
    def test_drain_checkpoints_the_graph(self, fig1, tmp_path):
        service = CommunityService(fig1, storage_dir=tmp_path)
        with CommunityGateway(service, port=0) as gateway:
            gateway.service.apply_updates([GraphUpdate("add_edge", "A", "Z")])
        assert (tmp_path / "snapshot.bin").exists()
        assert load_snapshot(tmp_path / "snapshot.bin").version == 1

    def test_drain_without_storage_warns_loudly(self, fig1, capsys):
        with CommunityGateway(fig1, port=0) as gateway:
            gateway.service.apply_updates([GraphUpdate("add_edge", "A", "Z")])
        err = capsys.readouterr().err
        assert "WARNING" in err and "discarding 1 applied update" in err
        assert "--data-dir" in err

    def test_no_warning_when_nothing_was_applied(self, fig1, capsys):
        with CommunityGateway(fig1, port=0):
            pass
        assert "WARNING" not in capsys.readouterr().err

    def test_stats_surface_the_storage_block(self, fig1, tmp_path):
        service = CommunityService(fig1, storage_dir=tmp_path)
        with CommunityGateway(service, port=0) as gateway:
            block = gateway.stats()["storage"]
            assert block["directory"] == str(tmp_path)
            assert block["boot"]["source"] == "cold"
            assert gateway.health()["durable"] is True
        gateway2 = CommunityGateway(fig1_profiled_graph(), port=0)
        assert gateway2.stats()["storage"] is None


# ----------------------------------------------------------------------
# format-compatibility gate (golden file)
# ----------------------------------------------------------------------
class TestGoldenSnapshot:
    """The checked-in ``tests/data/snapshot_v1.bin`` pins format version 1.

    Two contracts: (1) the golden file must keep loading — old snapshots
    on disk stay readable; (2) while ``FORMAT_VERSION == 1``, encoding
    the same graph must reproduce the golden bytes exactly — any byte-
    level change to the format must bump the header version (and get a
    new golden + migration story) instead of silently shifting.
    """

    def golden_graph(self) -> ProfiledGraph:
        pg = fig1_profiled_graph()
        pg.index()
        return pg

    def test_golden_still_loads(self, fig1):
        loaded = load_snapshot(GOLDEN)
        assert_graphs_equal(fig1, loaded)
        assert loaded.has_index()
        assert_index_equivalent(loaded.index(), fig1)

    def test_golden_digest_verifies(self):
        info = verify_digest(GOLDEN)
        assert info.format_version == 1

    def test_version_1_bytes_are_frozen(self, tmp_path):
        if FORMAT_VERSION != 1:
            pytest.skip("format moved past v1; the golden pins v1 loads only")
        pg = self.golden_graph()
        fresh = tmp_path / "fresh.bin"
        save_snapshot(pg, fresh)
        assert fresh.read_bytes() == GOLDEN.read_bytes(), (
            "snapshot v1 byte encoding changed — bump FORMAT_VERSION in "
            "repro/storage/snapshot.py (loaders must refuse what they can't "
            "read) and add a new golden alongside this one"
        )
