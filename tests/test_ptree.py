"""Tests for PTree (ancestor-closed label sets with tree semantics)."""

import pytest

from repro.errors import InvalidInputError, NotAncestorClosedError
from repro.ptree import PTree, ROOT, Taxonomy, maximal_common_subtree


@pytest.fixture
def tax() -> Taxonomy:
    t = Taxonomy()
    a = t.add("a")
    b = t.add("b")
    t.add("c", parent=a)
    t.add("d", parent=a)
    t.add("e", parent=b)
    return t


class TestConstruction:
    def test_empty(self, tax):
        t = PTree.empty(tax)
        assert len(t) == 0
        assert not t
        assert t.depth() == 0

    def test_root_only(self, tax):
        t = PTree.root_only(tax)
        assert len(t) == 1
        assert ROOT in t

    def test_from_nodes_closes(self, tax):
        c = tax.id_of("c")
        t = PTree.from_nodes(tax, [c])
        assert t.nodes == frozenset({c, tax.id_of("a"), ROOT})

    def test_from_names(self, tax):
        t = PTree.from_names(tax, ["c", "e"])
        assert t.names() == {"r", "a", "c", "b", "e"}

    def test_non_closed_rejected(self, tax):
        with pytest.raises(NotAncestorClosedError):
            PTree(tax, {tax.id_of("c")})

    def test_immutability(self, tax):
        t = PTree.root_only(tax)
        with pytest.raises(AttributeError):
            t.nodes = frozenset()


class TestOrderAndEquality:
    def test_subtree_relation(self, tax):
        small = PTree.from_names(tax, ["a"])
        large = PTree.from_names(tax, ["c", "d"])
        assert small <= large
        assert small < large
        assert not (large <= small)
        assert small.is_subtree_of(large)

    def test_equality_and_hash(self, tax):
        t1 = PTree.from_names(tax, ["c"])
        t2 = PTree.from_nodes(tax, [tax.id_of("c")])
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 != PTree.from_names(tax, ["d"])

    def test_cross_taxonomy_rejected(self, tax):
        other = Taxonomy()
        other.add("a")
        with pytest.raises(InvalidInputError):
            PTree.root_only(tax) | PTree.root_only(other)


class TestLatticeOps:
    def test_union_is_unified_ptree(self, tax):
        t1 = PTree.from_names(tax, ["c"])
        t2 = PTree.from_names(tax, ["e"])
        union = t1 | t2
        assert union.names() == {"r", "a", "c", "b", "e"}

    def test_intersection_is_common_subtree(self, tax):
        t1 = PTree.from_names(tax, ["c", "e"])
        t2 = PTree.from_names(tax, ["d", "e"])
        common = t1 & t2
        assert common.names() == {"r", "a", "b", "e"}

    def test_maximal_common_subtree_many(self, tax):
        trees = [
            PTree.from_names(tax, ["c", "e"]),
            PTree.from_names(tax, ["c", "d"]),
            PTree.from_names(tax, ["c"]),
        ]
        m = maximal_common_subtree(trees)
        assert m.names() == {"r", "a", "c"}

    def test_maximal_common_subtree_empty_collection(self):
        assert maximal_common_subtree([]) is None

    def test_add_node(self, tax):
        t = PTree.from_names(tax, ["a"])
        bigger = t.add_node(tax.id_of("c"))
        assert tax.id_of("c") in bigger
        assert t.add_node(tax.id_of("a")) is t  # already present

    def test_add_node_closes_when_needed(self, tax):
        t = PTree.root_only(tax)
        bigger = t.add_node(tax.id_of("c"))
        assert tax.id_of("a") in bigger

    def test_remove_leaf(self, tax):
        t = PTree.from_names(tax, ["c"])
        smaller = t.remove_leaf(tax.id_of("c"))
        assert smaller.names() == {"r", "a"}

    def test_remove_non_leaf_rejected(self, tax):
        t = PTree.from_names(tax, ["c"])
        with pytest.raises(InvalidInputError):
            t.remove_leaf(tax.id_of("a"))

    def test_remove_absent_rejected(self, tax):
        with pytest.raises(InvalidInputError):
            PTree.root_only(tax).remove_leaf(tax.id_of("a"))


class TestStructure:
    def test_leaves(self, tax):
        t = PTree.from_names(tax, ["c", "d", "e"])
        names = {tax.name(x) for x in t.leaves()}
        assert names == {"c", "d", "e"}

    def test_children_in_tree(self, tax):
        t = PTree.from_names(tax, ["c", "e"])
        children = t.children_in_tree(ROOT)
        assert {tax.name(x) for x in children} == {"a", "b"}

    def test_depth_and_levels(self, tax):
        t = PTree.from_names(tax, ["c"])
        assert t.depth() == 3
        levels = t.levels()
        assert [len(level) for level in levels] == [1, 1, 1]
        assert t.level_nodes(1) == frozenset({tax.id_of("a")})

    def test_preorder_nodes(self, tax):
        t = PTree.from_names(tax, ["c", "e"])
        names = [tax.name(x) for x in t.preorder_nodes()]
        assert names == ["r", "a", "c", "b", "e"]

    def test_pretty_renders_all_labels(self, tax):
        t = PTree.from_names(tax, ["c", "e"])
        text = t.pretty()
        for name in ("r", "a", "c", "b", "e"):
            assert name in text
        assert PTree.empty(tax).pretty() == "(empty P-tree)"
