"""Hypothesis property tests for the PR-4 serving invariants.

Two families:

* :class:`repro.api.Query` — wire round-trip (``to_dict``/``from_dict``),
  JSON round-trip, and ``cache_key`` invariants (post-filters excluded,
  defaults resolve like explicit values, spellings normalise) under random
  valid field combinations;
* CP-tree **shard-merge ≡ whole-build** — for random small profiled
  graphs and random shard counts, building per-label CL-trees in shards
  and merging (:func:`repro.parallel.merge_shard_builds`, the parallel
  build's merge path) is observationally identical to the sequential
  constructor.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Query
from repro.core.search import ALL_METHODS
from repro.datasets.synthetic import simple_profiled_graph
from repro.errors import InvalidInputError
from repro.index.cptree import CPTree
from repro.parallel import (
    build_shard_cltrees,
    label_weights,
    merge_shard_builds,
    shard_labels,
)
from repro.ptree.taxonomy import Taxonomy

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# Query strategies: every combination a client could legally send
# ----------------------------------------------------------------------
vertices = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=8,
    ),
)

#: Casing variants the spelling table must collapse.
methods = st.one_of(
    st.none(),
    st.sampled_from(ALL_METHODS).flatmap(
        lambda m: st.sampled_from([m, m.lower(), m.upper()])
    ),
)

cohesions = st.one_of(st.none(), st.sampled_from(["k-core", "k-truss", "k-clique"]))


@st.composite
def queries(draw):
    return Query(
        vertex=draw(vertices),
        k=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=50))),
        method=draw(methods),
        cohesion=draw(cohesions),
        limit=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=20))),
        min_size=draw(st.integers(min_value=1, max_value=10)),
    )


class TestQueryProperties:
    @SETTINGS
    @given(query=queries())
    def test_dict_round_trip_is_lossless(self, query):
        assert Query.from_dict(query.to_dict()) == query

    @SETTINGS
    @given(query=queries())
    def test_json_round_trip_is_lossless(self, query):
        assert Query.from_dict(json.loads(json.dumps(query.to_dict()))) == query

    @SETTINGS
    @given(query=queries())
    def test_cache_key_excludes_post_filters(self, query):
        stripped = query.replace(limit=None, min_size=1)
        assert stripped.cache_key() == query.cache_key()

    @SETTINGS
    @given(query=queries())
    def test_cache_key_resolves_defaults_like_explicit_values(self, query):
        resolved = query.replace(
            k=query.resolved_k(), method=query.resolved_method()
        )
        assert resolved.cache_key() == query.cache_key()
        # and against arbitrary session defaults, not just the paper's
        assert query.cache_key(default_k=9, default_method="basic") == (
            query.replace(
                k=query.resolved_k(9), method=query.resolved_method("basic")
            ).cache_key(default_k=9, default_method="basic")
        )

    @SETTINGS
    @given(query=queries())
    def test_method_spelling_never_reaches_the_key(self, query):
        if query.method is None:
            return
        for variant in (query.method.lower(), query.method.upper()):
            assert query.replace(method=variant) == query
            assert query.replace(method=variant).cache_key() == query.cache_key()

    @SETTINGS
    @given(query=queries())
    def test_replace_identity_and_builder_equivalence(self, query):
        assert query.replace() == query
        built = Query.vertex(query.vertex).k(query.k).method(query.method)
        built = built.cohesion(query.cohesion).limit(query.limit)
        built = built.min_size(query.min_size).build()
        # builder can't set k=None explicitly; normalise via replace
        assert built.replace(k=query.k) == query

    @SETTINGS
    @given(query=queries(), junk=st.text(min_size=1, max_size=10))
    def test_unknown_keys_rejected(self, query, junk):
        payload = query.to_dict()
        if junk in payload or junk == "q":
            return
        payload[junk] = 1
        with pytest.raises(InvalidInputError):
            Query.from_dict(payload)


# ----------------------------------------------------------------------
# shard-merge ≡ whole-build on random small profiled graphs
# ----------------------------------------------------------------------
@st.composite
def profiled_graphs(draw):
    """A small random profiled graph over a random taxonomy."""
    tax_seed = draw(st.integers(min_value=0, max_value=10_000))
    tax_nodes = draw(st.integers(min_value=1, max_value=12))
    rng = random.Random(tax_seed)
    taxonomy = Taxonomy()
    for i in range(1, tax_nodes):
        taxonomy.add(f"L{i}", parent=rng.randrange(i))
    n = draw(st.integers(min_value=2, max_value=16))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.05, max_value=0.6))
    labels_per_vertex = draw(st.integers(min_value=1, max_value=4))
    return simple_profiled_graph(
        taxonomy,
        n,
        seed=graph_seed,
        edge_probability=p,
        labels_per_vertex=labels_per_vertex,
    )


class TestShardMergeProperties:
    @SETTINGS
    @given(pg=profiled_graphs(), num_shards=st.integers(min_value=1, max_value=5))
    def test_shard_merge_equals_whole_build(self, pg, num_shards):
        weights = label_weights(pg.all_labels())
        shards = shard_labels(weights, num_shards)
        parts = [build_shard_cltrees(pg, shard) for shard in shards]
        merged = merge_shard_builds(pg, parts)
        whole = CPTree(pg.graph, pg.all_labels(), pg.taxonomy, validate=False)

        assert set(merged._nodes) == set(whole._nodes)
        assert merged._head_map == whole._head_map
        for label in merged.labels():
            node, ref = merged.node(label), whole.node(label)
            assert node.vertices == ref.vertices
            assert (node.parent is None) == (ref.parent is None)
            if node.parent is not None:
                assert node.parent.label == ref.parent.label
            assert sorted(c.label for c in node.children) == (
                sorted(c.label for c in ref.children)
            )
            for q in sorted(node.vertices, key=repr)[:3]:
                for k in (1, 2, 3):
                    assert merged.get(k, q, label) == whole.get(k, q, label)
        for v in pg.vertices():
            assert merged.restore_ptree(v) == whole.restore_ptree(v)

    @SETTINGS
    @given(pg=profiled_graphs(), num_shards=st.integers(min_value=1, max_value=5))
    def test_shard_labels_is_an_exact_partition(self, pg, num_shards):
        weights = label_weights(pg.all_labels())
        shards = shard_labels(weights, num_shards)
        flat = [x for shard in shards for x in shard]
        assert sorted(flat) == sorted(weights)
        assert len(flat) == len(set(flat))
        assert len(shards) <= num_shards
