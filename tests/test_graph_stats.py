"""Tests for descriptive graph statistics."""

import pytest

from repro.graph import Graph, gnp_graph, ring_of_cliques
from repro.graph.stats import (
    GraphSummary,
    average_clustering,
    core_spectrum,
    degree_histogram,
    local_clustering,
    summarize_graph,
)


class TestDegreeHistogram:
    def test_triangle_plus_tail(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert degree_histogram(g) == {2: 2, 3: 1, 1: 1}

    def test_empty(self):
        assert degree_histogram(Graph()) == {}


class TestClustering:
    def test_triangle_is_one(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        assert local_clustering(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_star_is_zero(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert local_clustering(g, 0) == 0.0
        assert local_clustering(g, 1) == 0.0  # degree 1

    def test_partial(self):
        # 0 connected to 1,2,3; only 1-2 among them
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert local_clustering(g, 0) == pytest.approx(1 / 3)

    def test_sampled_deterministic(self):
        g = gnp_graph(100, 0.1, seed=1)
        a = average_clustering(g, sample=20, seed=5)
        b = average_clustering(g, sample=20, seed=5)
        assert a == b


class TestCoreSpectrum:
    def test_clique(self):
        g = ring_of_cliques(1, 5)
        assert core_spectrum(g) == {4: 5}

    def test_mixed(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert core_spectrum(g) == {2: 3, 1: 1}


class TestSummary:
    def test_fields(self):
        g = ring_of_cliques(2, 4)
        summary = summarize_graph(g)
        assert isinstance(summary, GraphSummary)
        assert summary.num_vertices == 8
        assert summary.degeneracy == 3
        assert summary.num_components == 1
        assert summary.largest_component == 8
        assert len(summary.row()) == 8

    def test_empty_graph(self):
        summary = summarize_graph(Graph())
        assert summary.num_vertices == 0
        assert summary.max_degree == 0
        assert summary.largest_component == 0
