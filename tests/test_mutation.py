"""Tests for the versioned mutation pipeline.

Covers the ProfiledGraph update API (version counter, label/P-tree-cache
consistency), incremental CP-tree maintenance (structural equivalence with
fresh builds across randomized edit sequences), and the mutation-safe
engine (epoch-based cache invalidation, atomic batches, apply_updates).
"""

import random

import pytest

from repro.core import as_vertex_subtree_map, pcs
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.engine import (
    MISSING,
    CommunityExplorer,
    GraphUpdate,
    LRUCache,
    parse_update_text,
)
from repro.engine.updates import apply_update
from repro.errors import InvalidInputError, VertexNotFoundError
from repro.index.cptree import CPTree


@pytest.fixture()
def fig1():
    return fig1_profiled_graph()


def synthetic_instance(seed=3, n=24):
    tax = synthetic_taxonomy(40, seed=seed)
    return simple_profiled_graph(tax, n, seed=seed, edge_probability=0.35)


# ----------------------------------------------------------------------
# ProfiledGraph mutation API
# ----------------------------------------------------------------------
class TestProfiledGraphMutation:
    def test_version_bumps_once_per_effective_edit(self, fig1):
        assert fig1.version == 0
        assert fig1.add_edge("A", "C")
        assert fig1.version == 1
        assert not fig1.add_edge("A", "C")  # duplicate: no bump
        assert fig1.version == 1
        assert fig1.remove_edge("A", "C")
        assert fig1.version == 2
        assert not fig1.remove_edge("A", "C")  # absent: no bump
        assert fig1.version == 2

    def test_add_vertex_with_profile_closure(self, fig1):
        tax = fig1.taxonomy
        assert fig1.add_vertex("Z", profile=["ML"])
        assert "Z" in fig1
        # Ancestor closure: ML implies its whole root path.
        assert tax.id_of("ML") in fig1.labels("Z")
        assert fig1.labels("Z") == tax.closure([tax.id_of("ML")])
        assert not fig1.add_vertex("Z")  # already present: no overwrite
        assert fig1.version == 1

    def test_remove_vertex_cleans_labels_and_ptree_cache(self, fig1):
        # Regression: removing a vertex used to orphan its label entry.
        fig1.ptree("E")  # populate the P-tree cache
        assert "E" in fig1._ptree_cache
        fig1.remove_vertex("E")
        assert "E" not in fig1
        assert "E" not in fig1.all_labels()
        assert "E" not in fig1._ptree_cache
        with pytest.raises(VertexNotFoundError):
            fig1.labels("E")
        with pytest.raises(VertexNotFoundError):
            fig1.remove_vertex("E")

    def test_add_edge_creates_profiled_endpoints(self, fig1):
        fig1.add_edge("A", "new-vertex")
        assert fig1.labels("new-vertex") == frozenset()
        assert "new-vertex" in fig1.all_labels()

    def test_add_edge_self_loop_rejected(self, fig1):
        with pytest.raises(InvalidInputError):
            fig1.add_edge("A", "A")

    def test_set_profile_updates_labels_and_invalidates_ptree(self, fig1):
        tax = fig1.taxonomy
        before = fig1.ptree("E")
        assert fig1.set_profile("E", ["ML", "AI"])
        assert fig1.labels("E") == tax.closure([tax.id_of("ML"), tax.id_of("AI")])
        after = fig1.ptree("E")
        assert after is not before and after.nodes == fig1.labels("E")

    def test_set_profile_noop_keeps_version(self, fig1):
        labels = sorted(fig1.labels("E"))
        assert not fig1.set_profile("E", labels)
        assert fig1.version == 0

    def test_set_profile_unknown_vertex(self, fig1):
        with pytest.raises(VertexNotFoundError):
            fig1.set_profile("nope", ["ML"])


# ----------------------------------------------------------------------
# incremental CP-tree maintenance
# ----------------------------------------------------------------------
def assert_index_matches_fresh(pg):
    """The maintained CP-tree must be structurally identical to a rebuild."""
    maintained = pg.index()
    fresh = CPTree(pg.graph, pg.all_labels(), pg.taxonomy, validate=False)
    assert set(maintained._nodes) == set(fresh._nodes)
    assert maintained._head_map == fresh._head_map
    assert maintained.num_vertices == fresh.num_vertices
    for label, node in maintained._nodes.items():
        other = fresh._nodes[label]
        assert node.vertices == other.vertices, f"membership differs at {label}"
        pa = node.parent.label if node.parent is not None else None
        pb = other.parent.label if other.parent is not None else None
        assert pa == pb, f"parent link differs at {label}"
        assert sorted(c.label for c in node.children) == sorted(
            c.label for c in other.children
        ), f"child links differ at {label}"
        for q in sorted(node.vertices, key=repr)[:4]:
            for k in (1, 2, 3):
                assert node.cltree.kcore_vertices(q, k) == other.cltree.kcore_vertices(
                    q, k
                ), f"k-ĉore differs at label {label}, q={q!r}, k={k}"


class TestIncrementalIndexMaintenance:
    def test_edge_edit_repairs_only_shared_labels(self, fig1):
        fig1.index()
        fig1.remove_edge("C", "D")
        shared = fig1.labels("C") & fig1.labels("D")
        assert fig1.pending_repair_labels == len(shared)
        assert_index_matches_fresh(fig1)
        assert fig1.pending_repair_labels == 0
        assert fig1.repairs == 1
        assert fig1.maintenance_seconds > 0.0

    def test_profile_edit_dirties_symmetric_difference(self, fig1):
        tax = fig1.taxonomy
        fig1.index()
        old = fig1.labels("E")
        fig1.set_profile("E", ["ML", "AI", "DMS"])
        new = fig1.labels("E")
        assert fig1.pending_repair_labels == len(old ^ new)
        assert_index_matches_fresh(fig1)
        ml_node = fig1.index().node(tax.id_of("ML"))
        assert "E" in ml_node.vertices

    def test_vertex_removal_repairs_index(self, fig1):
        fig1.index()
        fig1.remove_vertex("D")
        assert_index_matches_fresh(fig1)
        with pytest.raises(InvalidInputError):
            fig1.index().head_labels("D")

    def test_label_emptied_and_repopulated(self, fig1):
        tax = fig1.taxonomy
        fig1.index()
        ml = tax.id_of("ML")
        carriers = sorted(fig1.index().vertices_with_label(ml))
        assert carriers  # fig1 has ML vertices
        for v in carriers:
            fig1.set_profile(v, set(fig1.labels(v)) - {ml})
        assert_index_matches_fresh(fig1)
        assert not fig1.index().has_label(ml)
        fig1.set_profile(carriers[0], ["ML"])
        assert_index_matches_fresh(fig1)
        assert fig1.index().vertices_with_label(ml) == frozenset({carriers[0]})

    def test_rebuild_true_still_forces_full_build(self, fig1):
        fig1.index()
        fig1.add_edge("A", "C")
        rebuilt = fig1.index(rebuild=True)
        assert fig1.pending_repair_labels == 0
        assert rebuilt is fig1.index()
        assert fig1.repairs == 0  # full rebuild, not a repair

    def test_mutations_without_index_skip_journal(self, fig1):
        fig1.add_edge("A", "C")
        assert fig1.pending_repair_labels == 0  # nothing to repair yet
        assert_index_matches_fresh(fig1)

    def test_mark_index_stale_forces_rebuild_and_invalidates(self, fig1):
        # The documented fallback for live-view writes the journal cannot
        # express: next index() access is a full rebuild, caches invalidate.
        tax = fig1.taxonomy
        fig1.index()
        version = fig1.version
        fig1.all_labels()["E"] = tax.closure([tax.id_of("ML")])  # bypasses API
        fig1.mark_index_stale()
        assert fig1.version == version + 1
        assert_index_matches_fresh(fig1)
        assert "E" in fig1.index().vertices_with_label(tax.id_of("ML"))
        assert fig1.repairs == 0  # rebuilt, not repaired

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_edit_sequences_match_fresh_builds(self, seed):
        rng = random.Random(seed)
        tax = synthetic_taxonomy(30, seed=seed)
        pg = simple_profiled_graph(tax, 18, seed=seed, edge_probability=0.2)
        pg.index()
        next_id = 18
        for step in range(50):
            roll = rng.random()
            vertices = sorted(pg.graph.vertex_set(), key=repr)
            if roll < 0.4:
                u, v = rng.choice(vertices), rng.choice(vertices)
                if u == v:
                    continue
                if pg.graph.has_edge(u, v):
                    pg.remove_edge(u, v)
                else:
                    pg.add_edge(u, v)
            elif roll < 0.6:
                pg.set_profile(
                    rng.choice(vertices),
                    rng.sample(range(tax.num_nodes), rng.randrange(0, 4)),
                )
            elif roll < 0.75:
                pg.add_vertex(
                    next_id, rng.sample(range(tax.num_nodes), rng.randrange(0, 3))
                )
                pg.add_edge(next_id, rng.choice(vertices))
                next_id += 1
            elif pg.num_vertices > 6:
                pg.remove_vertex(rng.choice(vertices))
            if step % 10 == 9:
                assert_index_matches_fresh(pg)
        assert_index_matches_fresh(pg)

    def test_queries_equal_basic_after_edits(self, seed=1):
        # End-to-end: index-based answers after repair == index-free truth.
        rng = random.Random(seed)
        pg = synthetic_instance(seed=seed)
        pg.index()
        for step in range(20):
            u, v = rng.randrange(24), rng.randrange(24)
            if u == v:
                continue
            if pg.graph.has_edge(u, v):
                pg.remove_edge(u, v)
            else:
                pg.add_edge(u, v)
            if step % 5 == 0:
                q = rng.randrange(24)
                got = as_vertex_subtree_map(pcs(pg, q, 2, index=pg.index()))
                want = as_vertex_subtree_map(pcs(pg, q, 2, method="basic"))
                assert got == want, f"diverged at step {step}"


# ----------------------------------------------------------------------
# mutation-safe engine
# ----------------------------------------------------------------------
class TestEngineMutationSafety:
    def test_stale_read_regression(self, fig1):
        """The acceptance scenario: mutate behind a warm explorer, re-query,
        and get the freshly recomputed community (the pre-version pipeline
        demonstrably served the stale one)."""
        ex = CommunityExplorer(fig1, default_k=2)
        stale = ex.explore("D")
        assert ex.explore("D") is stale  # warm: served from cache
        ex.apply_updates([("remove_edge", "C", "D")])
        fresh = ex.explore("D")
        truth = as_vertex_subtree_map(pcs(fig1, "D", 2, method="basic"))
        assert as_vertex_subtree_map(fresh) == truth
        # The graph change genuinely moved the answer, so serving the old
        # cache entry (what the engine did before versioning) was wrong.
        assert as_vertex_subtree_map(fresh) != as_vertex_subtree_map(stale)
        assert ex.stats().invalidations == 1

    def test_direct_pg_mutation_also_invalidates(self, fig1):
        # Version checks cover mutations that bypass apply_updates too.
        ex = CommunityExplorer(fig1, default_k=2)
        ex.explore("D")
        fig1.remove_edge("C", "D")
        fresh = ex.explore("D")
        truth = as_vertex_subtree_map(pcs(fig1, "D", 2, method="basic"))
        assert as_vertex_subtree_map(fresh) == truth
        assert ex.stats().invalidations == 1

    def test_unmutated_graph_still_hits_cache(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        first = ex.explore("D")
        assert ex.explore("D") is first
        stats = ex.stats()
        assert stats.cache.hits == 1 and stats.invalidations == 0

    def test_falsy_result_is_served_from_cache(self, fig1):
        # An empty PCSResult is falsy; the sentinel-based lookup must not
        # re-execute it forever.
        ex = CommunityExplorer(fig1, default_k=2)
        empty = ex.explore("D", k=50)
        assert len(empty) == 0 and not empty
        assert ex.explore("D", k=50) is empty
        stats = ex.stats()
        assert stats.queries_served == 1 and stats.cache.hits == 1

    def test_batch_with_unknown_vertex_fails_before_any_work(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        before = ex.stats()
        with pytest.raises(VertexNotFoundError):
            ex.explore_many([("D", 2), ("ghost", 2), ("E", 2)], workers=4)
        after = ex.stats()
        assert after.queries_served == before.queries_served == 0
        assert after.batches == 0
        assert after.cache.lookups == 0  # validation precedes cache traffic
        # The batch left nothing half-cached behind.
        assert len(ex._cache) == 0

    def test_batch_with_unknown_method_fails_before_any_work(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        with pytest.raises(InvalidInputError):
            ex.explore_many([("D", 2), ("E", 2, "warp-speed")])
        stats = ex.stats()
        assert stats.queries_served == 0 and stats.batches == 0

    def test_single_explore_validates_before_cache(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        with pytest.raises(VertexNotFoundError):
            ex.explore("ghost")
        assert ex.stats().cache.lookups == 0

    def test_apply_updates_receipt_and_noops(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        ex.warm()
        receipt = ex.apply_updates(
            [
                ("add_edge", "A", "C"),
                ("add_edge", "A", "C"),  # duplicate: no-op
                GraphUpdate(op="set_profile", u="E", labels=["ML"]),
                {"op": "add_vertex", "u": "Z", "labels": ["AI"]},
                ("add_edge", "Z", "D"),
            ]
        )
        assert receipt.requested == 5
        assert receipt.applied == 4
        assert receipt.version == fig1.version == 4
        assert receipt.repaired_labels > 0
        stats = ex.stats()
        assert stats.updates_applied == 4
        assert stats.maintenance_seconds > 0.0
        assert_index_matches_fresh(fig1)

    def test_apply_updates_without_index_defers_build(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        receipt = ex.apply_updates([("add_edge", "A", "C")])
        assert receipt.repaired_labels == 0 and not fig1.has_index()
        ex.explore("D")  # builds lazily, post-edit
        assert fig1.has_index()

    def test_cltree_tracks_mutations_with_maintained_cores(self, fig1):
        from repro.index.cltree import CLTree

        ex = CommunityExplorer(fig1, default_k=2)
        first = ex.cltree()
        assert ex.cltree() is first  # same version: reused
        ex.apply_updates([("add_edge", "A", "C"), ("remove_edge", "B", "D")])
        second = ex.cltree()
        assert second is not first
        fresh = CLTree(fig1.graph)
        for v in "ABCDE":
            for k in (1, 2, 3):
                assert second.kcore_vertices(v, k) == fresh.kcore_vertices(v, k)

    def test_direct_mutation_discards_stale_shared_cores(self, fig1):
        # Regression: apply_updates must not patch the shared core index
        # from a base that missed direct ProfiledGraph-API edits — the
        # maintained cltree would silently drop those edges (or KeyError
        # on vertices the cores never saw).
        from repro.index.cltree import CLTree

        ex = CommunityExplorer(fig1, default_k=2)
        ex.cltree()  # seed the shared core index
        fig1.add_edge("A", "C")  # direct edit: cores are now stale
        fig1.add_edge("new-vertex", "A")  # cores never saw this vertex
        ex.apply_updates([("remove_edge", "D", "E")])
        maintained = ex.cltree()
        fresh = CLTree(fig1.graph)
        for v in ("A", "B", "C", "D", "E", "new-vertex"):
            for k in (1, 2, 3):
                assert maintained.kcore_vertices(v, k) == fresh.kcore_vertices(v, k)

    def test_remove_vertex_update_with_live_cltree(self, fig1):
        from repro.index.cltree import CLTree

        ex = CommunityExplorer(fig1, default_k=2)
        ex.cltree()  # activate shared-core maintenance
        ex.apply_updates([("remove_vertex", "D")])
        fresh = CLTree(fig1.graph)
        for v in "ABCE":
            for k in (1, 2):
                assert ex.cltree().kcore_vertices(v, k) == fresh.kcore_vertices(v, k)
        with pytest.raises(VertexNotFoundError):
            ex.explore("D")


# ----------------------------------------------------------------------
# versioned cache + update parsing
# ----------------------------------------------------------------------
class TestVersionedCache:
    def test_get_versioned_hit_miss_invalidation(self):
        cache = LRUCache(maxsize=4)
        assert cache.get_versioned("a", 0) is MISSING
        cache.put_versioned("a", 0, "value")
        assert cache.get_versioned("a", 0) == "value"
        assert cache.get_versioned("a", 1) is MISSING  # stale: dropped
        assert "a" not in cache
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 2
        assert stats.invalidations == 1

    def test_falsy_and_none_values_cacheable(self):
        cache = LRUCache()
        cache.put_versioned("empty", 7, [])
        cache.put_versioned("none", 7, None)
        assert cache.get_versioned("empty", 7) == []
        assert cache.get_versioned("none", 7) is None
        assert cache.get("absent", MISSING) is MISSING

    def test_pop_and_reset(self):
        cache = LRUCache()
        cache.put("a", 1)
        assert cache.pop("a") == 1 and cache.pop("a") is None
        cache.put_versioned("b", 0, 2)
        cache.get_versioned("b", 9)
        cache.reset_stats()
        assert cache.stats().invalidations == 0


class TestUpdateParsing:
    def test_text_formats(self):
        updates = parse_update_text(
            "# comment\n"
            "add-edge A B\n"
            "remove-edge A B\n"
            "add-vertex Z ML,AI\n"
            "add-vertex Y\n"
            "remove-vertex Z\n"
            "set-profile E ML\n"
            '{"op": "add_edge", "u": 1, "v": 2}\n'
        )
        ops = [u.op for u in updates]
        assert ops == [
            "add_edge",
            "remove_edge",
            "add_vertex",
            "add_vertex",
            "remove_vertex",
            "set_profile",
            "add_edge",
        ]
        assert updates[2].labels == ["ML", "AI"]
        assert updates[3].labels == []
        assert updates[6].u == 1 and updates[6].v == 2

    def test_bad_lines_report_position(self):
        with pytest.raises(InvalidInputError, match="line 2"):
            parse_update_text("add-edge A B\nadd-edge A\n")
        with pytest.raises(InvalidInputError, match="line 1"):
            parse_update_text('{"op": broken}\n')

    def test_coerce_and_validation(self):
        assert GraphUpdate.coerce(("add-edge", 1, 2)).op == "add_edge"
        assert GraphUpdate.coerce({"op": "remove_vertex", "u": 3}).u == 3
        with pytest.raises(InvalidInputError):
            GraphUpdate(op="teleport", u=1)
        with pytest.raises(InvalidInputError):
            GraphUpdate(op="add_edge", u=1)  # missing v
        with pytest.raises(InvalidInputError):
            GraphUpdate(op="remove_vertex", u=1, v=2)  # spurious v
        with pytest.raises(InvalidInputError):
            GraphUpdate.coerce({"op": "add_edge", "u": 1, "v": 2, "w": 3})
        with pytest.raises(InvalidInputError):
            GraphUpdate.coerce(("add_edge", 1, 2, 3))  # extra endpoint: reject

    def test_apply_update_plain(self, fig1):
        assert apply_update(fig1, GraphUpdate(op="add_edge", u="A", v="C"))
        assert not apply_update(fig1, GraphUpdate(op="add_edge", u="A", v="C"))
        apply_update(fig1, GraphUpdate(op="remove_vertex", u="A"))
        assert "A" not in fig1
