"""Hypothesis property tests for dynamic core maintenance."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dynamic import DynamicCoreIndex
from repro.graph import core_numbers, gnp_graph


@st.composite
def edit_scripts(draw):
    """A starting graph plus a script of edge insertions/removals."""
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(4, 20))
    p = draw(st.floats(0.05, 0.35))
    steps = draw(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19), st.booleans()),
            max_size=40,
        )
    )
    return seed, n, p, steps


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=edit_scripts())
def test_incremental_cores_always_exact(script):
    seed, n, p, steps = script
    g = gnp_graph(n, p, seed=seed)
    index = DynamicCoreIndex(g)
    for u, v, insert in steps:
        u %= n
        v %= n
        if u == v:
            continue
        if insert:
            index.insert(u, v)
        else:
            index.remove(u, v)
    assert index.core_numbers() == core_numbers(g)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(script=edit_scripts())
def test_insert_never_decreases_remove_never_increases(script):
    seed, n, p, steps = script
    g = gnp_graph(n, p, seed=seed)
    index = DynamicCoreIndex(g)
    for u, v, insert in steps:
        u %= n
        v %= n
        if u == v:
            continue
        before = index.core_numbers()
        if insert:
            already = g.has_edge(u, v)
            index.insert(u, v)
            after = index.core_numbers()
            for w, c in after.items():
                assert c >= before.get(w, 0)
                assert c <= before.get(w, 0) + (0 if already else 1)
        else:
            existed = g.has_edge(u, v)
            index.remove(u, v)
            after = index.core_numbers()
            for w, c in after.items():
                assert c <= before.get(w, 0)
                assert c >= before.get(w, 0) - (1 if existed else 0)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(1, 4),
)
def test_k_core_view_matches_graph(seed, k):
    g = gnp_graph(25, 0.2, seed=seed)
    index = DynamicCoreIndex(g)
    rng = random.Random(seed)
    for _ in range(15):
        u, v = rng.randrange(25), rng.randrange(25)
        if u == v:
            continue
        if g.has_edge(u, v):
            index.remove(u, v)
        else:
            index.insert(u, v)
    from repro.graph import k_core_vertices

    assert index.k_core_vertices(k) == k_core_vertices(g, k)
