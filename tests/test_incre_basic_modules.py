"""Module-level tests for basic_query / incre_query and oracle modes."""

import pytest

from repro.core import basic_query, incre_query
from repro.core.cohesion import KCliqueCohesion, KTrussCohesion
from repro.datasets import fig1_profiled_graph
from repro.errors import VertexNotFoundError


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestBasicQuery:
    def test_method_tag(self, pg):
        assert basic_query(pg, "D", 2).method == "basic"

    def test_unknown_query_rejected(self, pg):
        with pytest.raises(VertexNotFoundError):
            basic_query(pg, "ZZ", 2)

    def test_never_builds_index(self):
        pg2 = fig1_profiled_graph()
        basic_query(pg2, "D", 2)
        assert not pg2.has_index()

    def test_truss_cohesion(self, pg):
        result = basic_query(pg, "D", 3, cohesion=KTrussCohesion())
        # triangles {B, C, D} and {A, D, E} are both 3-trusses
        assert {c.vertices for c in result} == {frozenset("BCD"), frozenset("ADE")}

    def test_clique_cohesion(self, pg):
        result = basic_query(pg, "D", 3, cohesion=KCliqueCohesion())
        assert all("D" in c.vertices for c in result)


class TestIncreQuery:
    def test_method_tag_and_index_reuse(self):
        pg2 = fig1_profiled_graph()
        result = incre_query(pg2, "D", 2)
        assert result.method == "incre"
        assert pg2.has_index()  # built and cached on first use
        first = pg2.index()
        incre_query(pg2, "D", 2)
        assert pg2.index() is first

    def test_explicit_index_honoured(self, pg):
        index = pg.index()
        result = incre_query(pg, "D", 2, index=index)
        assert len(result) == 2

    def test_matches_basic_for_all_queries(self, pg):
        for q in pg.vertices():
            a = {(c.subtree.nodes, c.vertices) for c in basic_query(pg, q, 2)}
            b = {(c.subtree.nodes, c.vertices) for c in incre_query(pg, q, 2)}
            assert a == b, q

    def test_verification_counts_not_larger_than_basic(self, pg):
        # With alive-label pruning, incre's search space is a subset of
        # basic's, so it can never verify more subtrees.
        for q in ("A", "B", "D"):
            vb = basic_query(pg, q, 2).num_verifications
            vi = incre_query(pg, q, 2).num_verifications
            assert vi <= vb
