"""Tests for the ATC-style baseline."""

import pytest

from repro.baselines import atc_community, attribute_score
from repro.datasets import fig1_profiled_graph
from repro.errors import VertexNotFoundError


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestAttributeScore:
    def test_empty(self, pg):
        assert attribute_score(pg, set()) == 0.0

    def test_homogeneous_beats_mixed(self, pg):
        homogeneous = attribute_score(pg, {"B", "C"})  # identical profiles
        mixed = attribute_score(pg, {"B", "E"})  # disjoint-ish profiles
        assert homogeneous > mixed

    def test_scale(self, pg):
        # one vertex with p labels scores p (each count 1, squared, /1)
        assert attribute_score(pg, {"B"}) == len(pg.labels("B"))


class TestATCCommunity:
    def test_returns_truss_subset(self, pg):
        members, score = atc_community(pg, "D", 3)
        assert "D" in members
        assert score > 0
        from repro.graph import connected_k_truss

        assert members <= connected_k_truss(pg.graph, "D", 3)

    def test_peeling_improves_or_keeps_score(self, pg):
        from repro.graph import connected_k_truss

        base = connected_k_truss(pg.graph, "D", 3)
        base_score = attribute_score(pg, set(base))
        _, score = atc_community(pg, "D", 3)
        assert score >= base_score

    def test_empty_when_no_truss(self, pg):
        members, score = atc_community(pg, "D", 5)
        assert members == frozenset()
        assert score == 0.0

    def test_triangle_community(self, pg):
        members, _ = atc_community(pg, "F", 3)
        assert members == frozenset("FGH")

    def test_unknown_vertex(self, pg):
        with pytest.raises(VertexNotFoundError):
            atc_community(pg, "ZZ", 3)

    def test_max_peels_cap(self, pg):
        capped, _ = atc_community(pg, "D", 3, max_peels=0)
        from repro.graph import connected_k_truss

        assert capped == connected_k_truss(pg.graph, "D", 3)
