"""Cross-algorithm equivalence: the load-bearing correctness suite.

All five PCS algorithms must return the same {maximal subtree → community}
map on any input; additionally a brute-force oracle (full enumeration over
ancestor-closed subsets, pairwise maximality) pins down the ground truth on
small instances. Randomised instances cover flat, deep and themed profile
shapes; hypothesis drives the structured generation.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import PCS_METHODS, ProfiledGraph, as_vertex_subtree_map, pcs
from repro.graph import gnp_graph, k_core_within
from repro.ptree import PTree, Taxonomy, enumerate_subtrees


def random_taxonomy(rng: random.Random, n: int) -> Taxonomy:
    tax = Taxonomy()
    for i in range(1, n):
        tax.add(f"L{i}", parent=rng.randrange(i))
    return tax


def random_instance(seed: int, themed: bool = False):
    """One random profiled graph plus a query (q, k)."""
    rng = random.Random(seed)
    tax = random_taxonomy(rng, rng.randint(4, 12))
    n = rng.randint(8, 30)
    g = gnp_graph(n, rng.uniform(0.15, 0.45), seed=rng.randrange(10**9))
    profiles = {}
    if themed:
        theme = tax.closure(
            rng.sample(range(tax.num_nodes), min(3, tax.num_nodes - 1)) or [0]
        )
        members = set(rng.sample(range(n), max(3, n // 2)))
    for v in range(n):
        count = rng.randint(0, min(7, tax.num_nodes - 1))
        nodes = rng.sample(range(tax.num_nodes), count) if count else []
        labels = tax.closure(nodes + [0])
        if themed and v in members:
            labels |= theme
        profiles[v] = labels
    pg = ProfiledGraph(g, tax, profiles, validate=False)
    q = rng.randrange(n)
    k = rng.randint(1, 3)
    return pg, q, k


def brute_force(pg: ProfiledGraph, q, k):
    base = PTree(pg.taxonomy, pg.labels(q), _validated=True)
    feasible = {}
    for sub in enumerate_subtrees(base, include_empty=False):
        community = k_core_within(pg.graph, pg.vertices_with_subtree(sub), k, q=q)
        if community:
            feasible[sub] = community
    return {
        t: c for t, c in feasible.items() if not any(t < t2 for t2 in feasible)
    }


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_flat_instances(self, seed):
        pg, q, k = random_instance(seed)
        expected = brute_force(pg, q, k)
        for method in PCS_METHODS:
            got = as_vertex_subtree_map(pcs(pg, q, k, method=method))
            assert got == expected, f"{method} diverged (seed={seed})"

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_themed_instances(self, seed):
        pg, q, k = random_instance(seed, themed=True)
        expected = brute_force(pg, q, k)
        for method in PCS_METHODS:
            got = as_vertex_subtree_map(pcs(pg, q, k, method=method))
            assert got == expected, f"{method} diverged (seed={seed})"


class TestPairwiseAgreement:
    """On larger instances brute force is too slow; methods must still agree."""

    @pytest.mark.parametrize("seed", range(3))
    def test_methods_agree_on_synthetic_dataset(self, seed):
        from repro.datasets import SyntheticConfig, synthetic_profiled_graph
        from repro.datasets.taxonomies import synthetic_taxonomy

        tax = synthetic_taxonomy(120, seed=seed)
        config = SyntheticConfig(
            num_vertices=120,
            num_communities=8,
            avg_community_size=14,
            theme_size=5,
            tokens_per_vertex=2,
        )
        pg, _ = synthetic_profiled_graph(tax, config, seed=seed)
        rng = random.Random(seed)
        queries = rng.sample(sorted(pg.vertices()), 5)
        for q in queries:
            reference = None
            for method in PCS_METHODS:
                got = as_vertex_subtree_map(pcs(pg, q, 3, method=method))
                if reference is None:
                    reference = got
                else:
                    assert got == reference, f"{method} diverged at q={q}"


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_all_methods_agree(seed):
    """Hypothesis: equivalence holds for arbitrary random instances."""
    pg, q, k = random_instance(seed)
    expected = brute_force(pg, q, k)
    for method in PCS_METHODS:
        got = as_vertex_subtree_map(pcs(pg, q, k, method=method))
        assert got == expected


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_result_invariants(seed):
    """Every returned community satisfies the four Problem-1 properties."""
    pg, q, k = random_instance(seed)
    result = pcs(pg, q, k, method="adv-P")
    for community in result:
        vertices = community.vertices
        subtree = community.subtree.nodes
        # connectivity + membership
        assert q in vertices
        assert pg.graph.component_of(q, within=vertices) == vertices
        # structure cohesiveness
        for v in vertices:
            deg = sum(1 for u in pg.graph.neighbors(v) if u in vertices)
            assert deg >= k
        # profile cohesiveness: every member carries the subtree, and the
        # subtree equals the members' maximal common subtree
        common = None
        for v in vertices:
            labels = pg.labels(v)
            assert subtree <= labels
            common = labels if common is None else common & labels
        assert subtree == common
        # maximal structure: Gk[T] is the largest qualifying subgraph
        assert vertices == k_core_within(
            pg.graph, pg.vertices_with_subtree(subtree), k, q=q
        )
