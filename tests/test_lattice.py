"""Tests for the subtree lattice (parents/children, Upper-diamond)."""

import random

import pytest

from repro.errors import InvalidInputError
from repro.ptree import (
    ROOT,
    Taxonomy,
    children_of,
    common_child,
    is_valid_subtree,
    lattice_level,
    parents_of,
    subtree_leaves,
)


def random_taxonomy(rng: random.Random, n: int) -> Taxonomy:
    tax = Taxonomy()
    for i in range(1, n):
        tax.add(f"L{i}", parent=rng.randrange(i))
    return tax


class TestChildrenParents:
    def test_children_add_one_node(self):
        rng = random.Random(0)
        tax = random_taxonomy(rng, 10)
        base = frozenset(tax.nodes())
        current = tax.closure([4])
        for child in children_of(tax, base, current):
            assert len(child) == len(current) + 1
            assert tax.is_ancestor_closed(child)

    def test_parents_remove_one_leaf(self):
        rng = random.Random(1)
        tax = random_taxonomy(rng, 10)
        current = tax.closure([5, 8])
        for parent in parents_of(tax, current):
            assert len(parent) == len(current) - 1
            assert tax.is_ancestor_closed(parent)

    def test_parent_child_inverse(self):
        rng = random.Random(2)
        for _ in range(10):
            tax = random_taxonomy(rng, 8)
            base = frozenset(tax.nodes())
            current = tax.closure([rng.randrange(8)])
            for child in children_of(tax, base, current):
                assert current in parents_of(tax, child)

    def test_root_only_parent_is_empty(self):
        tax = random_taxonomy(random.Random(3), 5)
        assert parents_of(tax, frozenset({ROOT})) == [frozenset()]

    def test_subtree_leaves(self):
        tax = Taxonomy()
        a = tax.add("a")
        c = tax.add("c", parent=a)
        current = frozenset({ROOT, a, c})
        assert subtree_leaves(tax, current) == [c]

    def test_level(self):
        assert lattice_level(frozenset()) == 0
        assert lattice_level(frozenset({1, 2, 3})) == 3


class TestUpperDiamond:
    def test_common_child_is_union(self):
        tax = Taxonomy()
        a = tax.add("a")
        b = tax.add("b")
        base = frozenset({ROOT, a, b})
        parent = frozenset({ROOT})
        first = parent | {a}
        second = parent | {b}
        assert common_child(tax, base, first, second) == frozenset({ROOT, a, b})

    def test_property_holds_for_random_siblings(self):
        # Proposition 2: any two children of a subtree share a child.
        rng = random.Random(5)
        for _ in range(20):
            tax = random_taxonomy(rng, 9)
            base = frozenset(tax.nodes())
            current = tax.closure([rng.randrange(9)])
            kids = children_of(tax, base, current)
            if len(kids) < 2:
                continue
            first, second = rng.sample(kids, 2)
            merged = common_child(tax, base, first, second)
            assert first < merged and second < merged
            assert is_valid_subtree(tax, base, merged)

    def test_non_siblings_rejected(self):
        tax = Taxonomy()
        a = tax.add("a")
        b = tax.add("b")
        base = frozenset({ROOT, a, b})
        with pytest.raises(InvalidInputError):
            common_child(tax, base, frozenset({ROOT}), frozenset({ROOT, a, b}))

    def test_escaping_base_rejected(self):
        tax = Taxonomy()
        a = tax.add("a")
        b = tax.add("b")
        base = frozenset({ROOT, a})  # b outside
        with pytest.raises(InvalidInputError):
            common_child(tax, base, frozenset({ROOT, a}), frozenset({ROOT, b}))


class TestValidity:
    def test_is_valid_subtree(self):
        tax = Taxonomy()
        a = tax.add("a")
        c = tax.add("c", parent=a)
        base = frozenset({ROOT, a, c})
        assert is_valid_subtree(tax, base, frozenset({ROOT, a}))
        assert not is_valid_subtree(tax, base, frozenset({ROOT, c}))  # not closed
        assert not is_valid_subtree(tax, base, frozenset({ROOT, a, c, 99}))
