"""Tests for the benchmark harness and workload utilities."""

import json

import pytest

from repro.bench import (
    Table,
    Timing,
    geometric_speedup,
    make_workload,
    time_call,
)
from repro.datasets import fig1_profiled_graph


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 123.456)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        assert "123.46" in text

    def test_row_arity_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_dict(self):
        table = Table("Demo", ["a"])
        table.add_row(3.5)
        doc = table.to_dict()
        assert doc["title"] == "Demo"
        assert doc["rows"] == [[3.5]]

    def test_float_formatting(self):
        table = Table("Demo", ["v"])
        table.add_row(0.000123)
        table.add_row(123456.0)
        text = table.render()
        assert "0.000123" in text
        assert "1.23e+05" in text


class TestPersistence:
    def test_save_result(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        path = harness.save_result("unit", {"x": 1})
        assert json.loads(path.read_text())["x"] == 1

    def test_save_tables(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        table = Table("T", ["a"])
        table.add_row(1)
        path = harness.save_tables("unit2", [table], extra={"k": 6})
        doc = json.loads(path.read_text())
        assert doc["k"] == 6
        assert doc["tables"][0]["title"] == "T"


class TestTiming:
    def test_time_call_smoke_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert time_call(lambda: None).repeats == 1
        monkeypatch.delenv("REPRO_BENCH_SMOKE")
        assert time_call(lambda: None).repeats == 3

    def test_time_call(self):
        timing = time_call(lambda: sum(range(1000)), repeats=3)
        assert isinstance(timing, Timing)
        assert timing.repeats == 3
        assert timing.min_ms <= timing.median_ms <= timing.max_ms

    def test_geometric_speedup(self):
        assert geometric_speedup([10.0, 10.0], [1.0, 1.0]) == pytest.approx(10.0)
        assert geometric_speedup([2.0], [2.0]) == pytest.approx(1.0)

    def test_geometric_speedup_validation(self):
        with pytest.raises(ValueError):
            geometric_speedup([], [])
        with pytest.raises(ValueError):
            geometric_speedup([1.0], [1.0, 2.0])


class TestWorkloads:
    def test_make_workload_from_core(self):
        pg = fig1_profiled_graph()
        workload = make_workload(pg, "fig1", num_queries=3, k=2, seed=1)
        assert len(workload) <= 3
        from repro.graph import core_numbers

        core = core_numbers(pg.graph)
        for q in workload:
            assert core[q] >= 2

    def test_require_profile_filter(self):
        pg = fig1_profiled_graph()
        workload = make_workload(pg, "fig1", num_queries=8, k=2, require_profile=True)
        for q in workload:
            assert len(pg.labels(q)) > 1

    def test_deterministic(self):
        pg = fig1_profiled_graph()
        a = make_workload(pg, "fig1", num_queries=4, k=2, seed=9)
        b = make_workload(pg, "fig1", num_queries=4, k=2, seed=9)
        assert a.queries == b.queries
