"""Tier-1 enforcement of the documentation surface.

Three contracts, so the docs cannot silently rot between PRs:

* the docstring-coverage gate (``scripts/check_docstrings.py``) passes at
  its pinned baseline;
* the generated API reference under ``docs/api/`` matches a fresh render
  (``scripts/gen_api_docs.py --check``);
* the hand-written guides exist, keep their load-bearing sections, and
  ``docs/experiments.md`` maps **every** ``benchmarks/bench_*.py`` file.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
DOCS = ROOT / "docs"
SCRIPTS = ROOT / "scripts"


def run_script(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPTS / name), *args],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )


class TestDocstringGate:
    def test_coverage_meets_pinned_baseline(self):
        result = run_script("check_docstrings.py")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_measure_mode_always_passes(self):
        result = run_script("check_docstrings.py", "--measure")
        assert result.returncode == 0
        assert "docstring coverage:" in result.stdout


class TestGeneratedApiDocs:
    def test_api_reference_is_current(self):
        result = run_script("gen_api_docs.py", "--check")
        assert result.returncode == 0, (
            result.stdout + result.stderr
            + "\n(regenerate with: PYTHONPATH=src python scripts/gen_api_docs.py)"
        )

    def test_reference_covers_api_and_server(self):
        index = (DOCS / "api" / "index.md").read_text(encoding="utf-8")
        for module in ("repro.api.query", "repro.api.service",
                       "repro.server.gateway", "repro.server.coalescer",
                       "repro.server.client"):
            assert f"`{module}`" in index, module
            assert (DOCS / "api" / f"{module}.md").exists(), module


class TestGuides:
    def test_architecture_guide(self):
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        assert "## Layer diagram" in text
        assert "## Data flow: one query" in text
        assert "## Data flow: one mutation" in text
        # The diagram names every layer package.
        for package in ("repro.server", "repro.api", "repro.engine",
                        "repro.parallel", "repro.core"):
            assert package in text, package

    def test_serving_guide(self):
        text = (DOCS / "serving.md").read_text(encoding="utf-8")
        for heading in ("## Request coalescing", "## Backpressure",
                        "## Parallel workers", "## Observability"):
            assert heading in text, heading
        assert "curl -s -X POST localhost:8437/query" in text
        assert "Retry-After" in text

    def test_experiments_guide_maps_every_benchmark(self):
        text = (DOCS / "experiments.md").read_text(encoding="utf-8")
        bench_files = sorted(
            p.name for p in (ROOT / "benchmarks").glob("bench_*.py")
        )
        assert bench_files, "no benchmarks found?"
        unmapped = [name for name in bench_files if f"`{name}`" not in text]
        assert not unmapped, (
            f"benchmarks missing from docs/experiments.md: {unmapped}"
        )

    def test_readme_names_the_three_entry_points(self):
        text = (ROOT / "README.md").read_text(encoding="utf-8")
        for anchor in ("As a library", "From the command line", "As a service"):
            assert anchor in text, anchor
        assert "repro serve" in text
        assert "docs/architecture.md" in text or "docs/serving.md" in text
