"""Tests for the batched query engine (repro.engine)."""

import json

import pytest

from repro.core import as_vertex_subtree_map, pcs
from repro.core.search import ALL_METHODS
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.engine import (
    CommunityExplorer,
    LRUCache,
    QuerySpec,
    coerce_spec_vertices,
    load_query_file,
    parse_query_text,
    result_to_dict,
)
from repro.errors import InvalidInputError, VertexNotFoundError


@pytest.fixture()
def fig1():
    return fig1_profiled_graph()


@pytest.fixture()
def explorer(fig1):
    return CommunityExplorer(fig1, default_k=2)


def synthetic_instance(seed=3, n=24):
    tax = synthetic_taxonomy(40, seed=seed)
    return simple_profiled_graph(tax, n, seed=seed, edge_probability=0.35)


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_disabled_cache(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_unbounded(self):
        cache = LRUCache(maxsize=None)
        for i in range(3000):
            cache.put(i, i)
        assert len(cache) == 3000 and cache.stats().evictions == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)

    def test_peek_leaves_counters_alone(self):
        cache = LRUCache()
        cache.put("a", 1)
        assert cache.peek("a") == 1 and cache.peek("b") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0


class TestExplorerCacheAccounting:
    def test_repeat_query_hits_cache(self, explorer):
        first = explorer.explore("D")
        second = explorer.explore("D")
        assert first is second  # cached object, not a recomputation
        stats = explorer.stats()
        assert stats.queries_served == 1
        assert stats.cache.hits == 1 and stats.cache.misses == 1

    def test_distinct_parameters_miss(self, explorer):
        explorer.explore("D", k=2)
        explorer.explore("D", k=1)
        explorer.explore("D", k=2, method="incre")
        stats = explorer.stats()
        assert stats.queries_served == 3
        assert stats.cache.hits == 0 and stats.cache.misses == 3

    def test_default_and_explicit_method_share_entry(self, explorer):
        explorer.explore("D")  # default adv-P
        explorer.explore("D", method="adv-P")
        explorer.explore("D", method="ADV-p")  # case-insensitive
        stats = explorer.stats()
        assert stats.queries_served == 1 and stats.cache.hits == 2

    def test_index_built_once(self, explorer):
        for q in ("D", "E", "A"):
            explorer.explore(q)
        stats = explorer.stats()
        assert stats.index_builds == 1
        assert explorer.index_ready

    def test_warm_is_idempotent(self, explorer):
        explorer.warm()
        explorer.warm()
        assert explorer.stats().index_builds == 1

    def test_cltree_built_once_and_consistent(self, explorer):
        from repro.graph import connected_k_core

        cltree = explorer.cltree()
        assert explorer.cltree() is cltree  # lazy build, permanent reuse
        # The k-ĉore it serves matches a direct connected-core computation.
        expected = connected_k_core(explorer.pg.graph, "D", 2)
        assert cltree.kcore_vertices("D", 2) == frozenset(expected)

    def test_eviction_forces_recompute(self, fig1):
        ex = CommunityExplorer(fig1, cache_size=1, default_k=2)
        ex.explore("D")
        ex.explore("E")  # evicts D
        ex.explore("D")  # recomputed, evicts E
        stats = ex.stats()
        assert stats.queries_served == 3 and stats.cache.evictions == 2

    def test_clear_cache_keeps_index(self, explorer):
        explorer.explore("D")
        explorer.clear_cache()
        explorer.explore("D")
        stats = explorer.stats()
        assert stats.queries_served == 2 and stats.index_builds == 1

    def test_batch_accounting(self, explorer):
        explorer.explore_many([("D", 2), ("D", 2), ("E", 2)])
        stats = explorer.stats()
        # Three lookups; D executes once (in-batch dedup), E once.
        assert stats.queries_served == 2
        assert stats.cache.misses == 3 and stats.batches == 1
        explorer.explore_many([("D", 2), ("E", 2)])
        assert explorer.stats().cache.hits == 2

    def test_reset_stats(self, explorer):
        explorer.explore("D")
        explorer.reset_stats()
        stats = explorer.stats()
        assert stats.queries_served == 0 and stats.cache.lookups == 0

    def test_unknown_vertex_raises(self, explorer):
        with pytest.raises(VertexNotFoundError):
            explorer.explore("nope")

    def test_unknown_method_raises(self, explorer):
        with pytest.raises(InvalidInputError):
            explorer.explore("D", method="warp")


class TestBatchEqualsPerQuery:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_methods_match_direct_pcs(self, method):
        pg = synthetic_instance()
        queries = sorted(pg.vertices())[:6]
        expected = [as_vertex_subtree_map(pcs(pg, q, 2, method=method)) for q in queries]
        ex = CommunityExplorer(pg, default_k=2, default_method=method)
        batch = ex.explore_many(queries)
        assert [as_vertex_subtree_map(r) for r in batch] == expected

    def test_engine_aware_pcs_dispatch(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        direct = pcs(fig1, "D", 2)
        via_engine = pcs(fig1, "D", 2, engine=ex)
        assert as_vertex_subtree_map(via_engine) == as_vertex_subtree_map(direct)
        assert ex.stats().queries_served == 1
        # Second dispatch is served from the engine's cache.
        assert pcs(fig1, "D", 2, engine=ex) is via_engine

    def test_engine_pg_mismatch_rejected(self, fig1):
        ex = CommunityExplorer(fig1)
        other = synthetic_instance()
        with pytest.raises(InvalidInputError):
            pcs(other, 0, 1, engine=ex)


class TestCohesionHandling:
    def test_registered_name_and_none_share_cache_entry(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        ex.explore("D")
        ex.explore("D", cohesion="k-core")
        stats = ex.stats()
        assert stats.queries_served == 1 and stats.cache.hits == 1

    def test_named_alternative_model(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2)
        direct = pcs(fig1, "D", 2, cohesion="k-truss")
        via = ex.explore("D", cohesion="k-truss")
        assert as_vertex_subtree_map(via) == as_vertex_subtree_map(direct)

    def test_unregistered_instance_is_used_verbatim(self, fig1):
        # A parametrized model outside the registry must run with exactly
        # the supplied object — the regression was a registry re-resolve.
        from repro.core import FractionalKCoreCohesion

        model = FractionalKCoreCohesion(0.8)
        direct = pcs(fig1, "D", 2, cohesion=model)
        ex = CommunityExplorer(fig1, default_k=2)
        via_engine = pcs(fig1, "D", 2, cohesion=model, engine=ex)
        assert as_vertex_subtree_map(via_engine) == as_vertex_subtree_map(direct)

    def test_distinct_instances_do_not_share_cache(self, fig1):
        from repro.core import FractionalKCoreCohesion

        ex = CommunityExplorer(fig1, default_k=2)
        ex.explore("D", cohesion=FractionalKCoreCohesion(0.5))
        ex.explore("D", cohesion=FractionalKCoreCohesion(1.0))
        assert ex.stats().queries_served == 2  # identity-keyed, no collision


class TestThreadPoolFanOut:
    def test_threaded_matches_sequential(self):
        pg = synthetic_instance(seed=11)
        queries = sorted(pg.vertices())[:8]
        sequential = CommunityExplorer(pg, default_k=2).explore_many(queries)
        pg2 = synthetic_instance(seed=11)
        threaded = CommunityExplorer(pg2, default_k=2).explore_many(queries, workers=4)
        assert [as_vertex_subtree_map(r) for r in threaded] == [
            as_vertex_subtree_map(r) for r in sequential
        ]

    def test_threaded_deterministic_across_runs(self):
        pg = synthetic_instance(seed=5)
        queries = sorted(pg.vertices())[:8]
        runs = []
        for _ in range(3):
            ex = CommunityExplorer(pg, default_k=2)
            ex.clear_cache()
            runs.append(
                [as_vertex_subtree_map(r) for r in ex.explore_many(queries, workers=4)]
            )
        assert runs[0] == runs[1] == runs[2]

    def test_threaded_results_align_with_input_order(self, fig1):
        ex = CommunityExplorer(fig1, default_k=2, max_workers=4)
        specs = [("D", 2), ("E", 2), ("D", 1), ("A", 2)]
        results = ex.explore_many(specs)
        assert [(r.query, r.k) for r in results] == specs

    def test_threaded_builds_index_once(self):
        pg = synthetic_instance(seed=9)
        ex = CommunityExplorer(pg, default_k=2)
        ex.explore_many(sorted(pg.vertices())[:6], workers=4)
        assert ex.stats().index_builds == 1


class TestQuerySpec:
    def test_coerce_forms(self):
        assert QuerySpec.coerce("D") == QuerySpec(q="D")
        assert QuerySpec.coerce(("D", 3)) == QuerySpec(q="D", k=3)
        assert QuerySpec.coerce({"q": "D", "method": "incre"}) == QuerySpec(
            q="D", method="incre"
        )
        spec = QuerySpec("D", 2)
        assert QuerySpec.coerce(spec) is spec

    def test_coerce_rejects_bad_shapes(self):
        with pytest.raises(InvalidInputError):
            QuerySpec.coerce({"vertex": "D"})
        with pytest.raises(InvalidInputError):
            QuerySpec.coerce(("D", 2, "adv-P", "k-core", "extra"))


class TestBatchFile:
    def test_plain_text(self):
        specs = parse_query_text("# comment\nD\nE\n", default_k=2)
        assert specs == [QuerySpec("D", 2), QuerySpec("E", 2)]

    def test_json_list(self):
        specs = parse_query_text('["D", ["E", 3], {"q": "A", "method": "incre"}]', default_k=2)
        assert specs[0] == QuerySpec("D", 2)
        assert specs[1] == QuerySpec("E", 3)
        assert specs[2].method == "incre" and specs[2].k == 2

    def test_json_lines(self):
        specs = parse_query_text('{"q": "D", "k": 4}\n{"q": "E"}\n', default_k=2)
        assert specs == [QuerySpec("D", 4), QuerySpec("E", 2)]

    def test_json_lines_starting_with_array_item(self):
        # A leading [q, k] line must not be mistaken for a whole-file list.
        specs = parse_query_text('["E", 3]\n{"q": "D"}\n', default_k=2)
        assert specs == [QuerySpec("E", 3), QuerySpec("D", 2)]

    def test_single_array_file_is_whole_file_list(self):
        # Documented precedence: one parseable JSON document == list form,
        # so this is two queries, not one (q, k) pair.
        specs = parse_query_text('["E", 3]', default_k=2)
        assert specs == [QuerySpec("E", 2), QuerySpec(3, 2)]

    def test_invalid_json_reports_line(self):
        with pytest.raises(InvalidInputError, match="line 2"):
            parse_query_text('D\n{"q": broken}\n')

    def test_load_query_file(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("D\n\n# skip\nE\n", encoding="utf-8")
        assert [s.q for s in load_query_file(path)] == ["D", "E"]

    def test_vertex_coercion_to_int(self):
        pg = synthetic_instance()
        specs = coerce_spec_vertices(pg, [QuerySpec("0", 2), QuerySpec("zzz", 2)])
        assert specs[0].q == 0  # re-typed: graph uses int vertices
        assert specs[1].q == "zzz"  # untouched

    def test_result_to_dict_roundtrips_json(self, fig1):
        result = pcs(fig1, "D", 2)
        payload = result_to_dict(result)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["num_communities"] == 2
        sizes = sorted(c["size"] for c in payload["communities"])
        assert sizes == [3, 3]


class TestThroughputWorkload:
    def test_replay_hits_cache(self, fig1):
        from repro.bench import Workload, run_throughput

        workload = Workload(dataset="fig1", k=2, queries=("D", "E"))
        ex = CommunityExplorer(fig1)
        report = run_throughput(ex, workload, repeat_factor=3)
        assert report.queries == 6 and report.executed == 2
        assert report.cache_hits == 4 and report.cache_misses == 2
        assert report.cache_hit_rate == pytest.approx(4 / 6)
        assert report.queries_per_second > 0
        round_trip = report.to_dict()
        assert round_trip["executed"] == 2

    def test_repeat_factor_validated(self, fig1):
        from repro.bench import Workload, run_throughput

        with pytest.raises(ValueError):
            run_throughput(
                CommunityExplorer(fig1),
                Workload(dataset="fig1", k=2, queries=("D",)),
                repeat_factor=0,
            )
