"""Smoke tests: the example scripts must run and print their key results.

The slow example (`social_circles.py`, ~1 min of F1 evaluation) is exercised
only for importability; the fast ones run end to end as subprocesses.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "2 communities" in out
    assert "All methods agree" in out
    assert "MISMATCH" not in out
    assert "{A, B, D, E}" in out or "'A', 'B', 'D', 'E'" in out


def test_seminar_planning_runs():
    out = run_example("seminar_planning.py")
    assert "PCS finds 2 profiled communities" in out
    assert "ACQ finds 1 community" in out
    assert "Level-diversity ratio" in out


def test_themed_exploration_runs():
    out = run_example("themed_exploration.py")
    assert "Community detection" in out
    assert "k-truss" in out
    assert "directed PCS" in out


def test_serving_client_runs():
    out = run_example("serving_client.py")
    assert "gateway up at http://" in out
    assert "batch dispatches" in out
    assert "graph_version advanced: 0 -> 2" in out
    assert "prometheus agrees: repro_graph_version 2" in out
    assert "gateway drained and closed" in out


def test_index_scaling_runs():
    out = run_example("index_scaling.py", timeout=420)
    assert "CP-tree construction scaling" in out
    assert "basic" in out and "adv-P" in out


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "seminar_planning.py", "social_circles.py",
     "index_scaling.py", "themed_exploration.py", "serving_client.py"],
)
def test_examples_importable(name):
    spec = importlib.util.spec_from_file_location(name[:-3], EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module.__self__  # loader exists
    # import (executes top-level code only; main() guarded)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")
