"""Tests for the analysis package (cover comparison, summaries)."""

import pytest

from repro.analysis import (
    average_jaccard_match,
    best_match_jaccard,
    describe_community,
    jaccard,
    omega_index,
    overlap_matrix,
    overlapping_nmi,
    summarize_cover,
    theme_branches,
)
from repro.core import pcs
from repro.datasets import fig1_profiled_graph


def fs(*items):
    return frozenset(items)


class TestJaccard:
    def test_basic(self):
        assert jaccard(fs(1, 2), fs(2, 3)) == pytest.approx(1 / 3)
        assert jaccard(fs(), fs()) == 1.0
        assert jaccard(fs(1), fs()) == 0.0

    def test_best_match(self):
        cover = [fs(1, 2, 3)]
        reference = [fs(1, 2), fs(7, 8)]
        assert best_match_jaccard(cover, reference) == pytest.approx(2 / 3)
        assert best_match_jaccard([], reference) == 0.0

    def test_symmetric_average(self):
        a = [fs(1, 2, 3), fs(4, 5)]
        b = [fs(1, 2, 3), fs(4, 5)]
        assert average_jaccard_match(a, b) == 1.0
        c = [fs(1, 2, 3)]
        assert 0.0 < average_jaccard_match(a, c) < 1.0


class TestNMI:
    def test_identical_covers(self):
        cover = [fs(0, 1, 2), fs(3, 4)]
        assert overlapping_nmi(cover, cover, universe_size=10) == pytest.approx(1.0)

    def test_unrelated_covers(self):
        a = [fs(0, 1, 2, 3, 4)]
        b = [fs(5, 6, 7, 8, 9)]
        value = overlapping_nmi(a, b, universe_size=10)
        assert value < 0.3

    def test_empty_inputs(self):
        assert overlapping_nmi([], [fs(1)], 5) == 0.0
        assert overlapping_nmi([fs(1)], [fs(1)], 0) == 0.0

    def test_range(self):
        a = [fs(0, 1, 2), fs(2, 3, 4)]
        b = [fs(0, 1), fs(3, 4, 5)]
        assert 0.0 <= overlapping_nmi(a, b, 8) <= 1.0


class TestOmega:
    def test_identical(self):
        cover = [fs(0, 1, 2), fs(3, 4)]
        assert omega_index(cover, cover, range(6)) == pytest.approx(1.0)

    def test_disagreement_below_one(self):
        a = [fs(0, 1, 2, 3)]
        b = [fs(0, 1), fs(2, 3)]
        assert omega_index(a, b, range(6)) < 1.0

    def test_tiny_universe(self):
        assert omega_index([], [], [1]) == 1.0


class TestSummaries:
    @pytest.fixture(scope="class")
    def cover(self):
        pg = fig1_profiled_graph()
        return pg, list(pcs(pg, "D", 2))

    def test_overlap_matrix(self, cover):
        _, communities = cover
        matrix = overlap_matrix(communities)
        assert matrix[0][0] == 1.0
        assert matrix[0][1] == matrix[1][0]
        # {B,C,D} and {A,D,E} share only D
        assert matrix[0][1] == pytest.approx(1 / 5)

    def test_theme_branches(self, cover):
        pg, communities = cover
        branches = {frozenset(theme_branches(c, pg.taxonomy)) for c in communities}
        assert frozenset({"CM"}) in branches
        assert frozenset({"IS"}) in branches

    def test_summarize_cover(self, cover):
        pg, communities = cover
        summary = summarize_cover(communities, pg.taxonomy)
        assert summary.num_communities == 2
        assert summary.num_vertices_covered == 5
        assert 0.0 < summary.max_pairwise_jaccard < 1.0
        assert summary.top_branches
        assert "communities covering" in summary.digest()

    def test_empty_cover(self, cover):
        pg, _ = cover
        summary = summarize_cover([], pg.taxonomy)
        assert summary.num_communities == 0
        assert summary.digest()

    def test_describe_community(self, cover):
        pg, communities = cover
        text = describe_community(communities[0], pg.taxonomy)
        assert "members" in text
        assert "Shared focus" in text

    def test_describe_truncates_members(self, cover):
        pg, communities = cover
        text = describe_community(communities[0], pg.taxonomy, max_members=1)
        assert "(+2)" in text
