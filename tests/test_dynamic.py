"""Tests for dynamic maintenance (incremental cores, lazy CP-tree repair)."""

import random

import pytest

from repro.core import as_vertex_subtree_map, pcs
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.dynamic import DynamicCoreIndex, DynamicProfiledGraph
from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph import Graph, gnp_graph


class TestDynamicCoreIndex:
    def test_insert_raises_core(self):
        g = Graph([(0, 1), (1, 2)])
        index = DynamicCoreIndex(g)
        assert index.core(1) == 1
        index.insert(0, 2)  # closes the triangle
        assert index.core(0) == index.core(1) == index.core(2) == 2

    def test_remove_lowers_core(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        index = DynamicCoreIndex(g)
        index.remove(0, 1)
        assert index.core(0) == 1
        assert index.verify()

    def test_duplicate_and_missing_edges_are_noops(self):
        g = Graph([(0, 1)])
        index = DynamicCoreIndex(g)
        index.insert(0, 1)
        index.remove(5, 6)
        assert index.verify()

    def test_self_loop_rejected(self):
        index = DynamicCoreIndex(Graph())
        with pytest.raises(InvalidInputError):
            index.insert(3, 3)

    def test_add_and_remove_vertex(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        index = DynamicCoreIndex(g)
        index.add_vertex(9)
        assert index.core(9) == 0
        index.insert(9, 0)
        index.insert(9, 1)
        index.insert(9, 2)
        assert index.core(9) == 3
        index.remove_vertex(9)
        assert index.verify()
        with pytest.raises(VertexNotFoundError):
            index.core(9)

    def test_k_core_vertices_view(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        index = DynamicCoreIndex(g)
        assert index.k_core_vertices(2) == frozenset({0, 1, 2})

    @pytest.mark.parametrize("seed", range(6))
    def test_random_edit_sequences_stay_exact(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(30, 0.12, seed=seed)
        index = DynamicCoreIndex(g)
        existing = [tuple(e) for e in g.edges()]
        for step in range(120):
            if existing and rng.random() < 0.45:
                u, v = existing.pop(rng.randrange(len(existing)))
                index.remove(u, v)
            else:
                u = rng.randrange(30)
                v = rng.randrange(30)
                if u == v:
                    continue
                if not g.has_edge(u, v):
                    existing.append((u, v))
                index.insert(u, v)
            if step % 20 == 0:
                assert index.verify(), f"diverged at step {step}"
        assert index.verify()


class TestDynamicProfiledGraph:
    def make(self, seed=0):
        tax = synthetic_taxonomy(40, seed=seed)
        pg = simple_profiled_graph(tax, 25, seed=seed, edge_probability=0.25)
        return DynamicProfiledGraph(pg)

    def test_query_before_any_edit(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        result = dyn.query("D", 2)
        assert len(result) == 2

    def test_edits_keep_queries_exact(self):
        rng = random.Random(1)
        dyn = self.make(seed=1)
        pg = dyn.pg
        for step in range(25):
            u = rng.randrange(25)
            v = rng.randrange(25)
            if u == v:
                continue
            if pg.graph.has_edge(u, v):
                dyn.remove_edge(u, v)
            else:
                dyn.insert_edge(u, v)
            if step % 5 == 0:
                q = rng.randrange(25)
                got = as_vertex_subtree_map(dyn.query(q, 2))
                fresh = as_vertex_subtree_map(pcs(pg, q, 2, method="basic"))
                assert got == fresh, f"diverged at step {step}"

    def test_profile_update_reflected(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        tax = dyn.pg.taxonomy
        dyn.index()  # build once
        # E gains the full CM branch: {B, C, D, E}? E has edges to A, B, D.
        dyn.update_profile("E", [tax.id_of("ML"), tax.id_of("AI"), tax.id_of("DMS")])
        result = dyn.query("D", 2)
        themes = {frozenset(c.subtree.names()) for c in result}
        assert {"r", "CM", "ML", "AI"} in themes
        got = as_vertex_subtree_map(result)
        fresh = as_vertex_subtree_map(pcs(dyn.pg, "D", 2, method="basic"))
        assert got == fresh

    def test_update_profile_unknown_vertex(self):
        dyn = self.make()
        with pytest.raises(VertexNotFoundError):
            dyn.update_profile("nope", [])

    def test_lazy_repair_only_touches_dirty_labels(self):
        dyn = self.make(seed=2)
        dyn.index()
        assert dyn.dirty_label_count == 0
        u, v = 0, 1
        if not dyn.pg.graph.has_edge(u, v):
            dyn.insert_edge(u, v)
        else:
            dyn.remove_edge(u, v)
        assert dyn.dirty_label_count > 0
        dyn.index()
        assert dyn.dirty_label_count == 0

    def test_add_vertex_with_profile(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        tax = dyn.pg.taxonomy
        dyn.add_vertex("Z", [tax.id_of("ML")])
        dyn.insert_edge("Z", "B")
        dyn.insert_edge("Z", "C")
        dyn.insert_edge("Z", "D")
        got = as_vertex_subtree_map(dyn.query("Z", 2))
        fresh = as_vertex_subtree_map(pcs(dyn.pg, "Z", 2, method="basic"))
        assert got == fresh
        assert any("Z" in members for members in got.values())
