"""Tests for dynamic maintenance (incremental cores, lazy CP-tree repair)."""

import random

import pytest

from repro.core import as_vertex_subtree_map, pcs
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.dynamic import DynamicCoreIndex, DynamicProfiledGraph
from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph import Graph, gnp_graph


class TestDynamicCoreIndex:
    def test_insert_raises_core(self):
        g = Graph([(0, 1), (1, 2)])
        index = DynamicCoreIndex(g)
        assert index.core(1) == 1
        index.insert(0, 2)  # closes the triangle
        assert index.core(0) == index.core(1) == index.core(2) == 2

    def test_remove_lowers_core(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        index = DynamicCoreIndex(g)
        index.remove(0, 1)
        assert index.core(0) == 1
        assert index.verify()

    def test_duplicate_and_missing_edges_are_noops(self):
        g = Graph([(0, 1)])
        index = DynamicCoreIndex(g)
        index.insert(0, 1)
        index.remove(5, 6)
        assert index.verify()

    def test_self_loop_rejected(self):
        index = DynamicCoreIndex(Graph())
        with pytest.raises(InvalidInputError):
            index.insert(3, 3)

    def test_add_and_remove_vertex(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        index = DynamicCoreIndex(g)
        index.add_vertex(9)
        assert index.core(9) == 0
        index.insert(9, 0)
        index.insert(9, 1)
        index.insert(9, 2)
        assert index.core(9) == 3
        index.remove_vertex(9)
        assert index.verify()
        with pytest.raises(VertexNotFoundError):
            index.core(9)

    def test_k_core_vertices_view(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        index = DynamicCoreIndex(g)
        assert index.k_core_vertices(2) == frozenset({0, 1, 2})

    def test_hook_forms_match_wrappers(self):
        # edge_inserted / edge_removed react to mutations the caller owns.
        g = Graph([(0, 1), (1, 2), (2, 0)])
        index = DynamicCoreIndex(g)
        g.add_edge(2, 3)
        index.edge_inserted(2, 3)
        assert index.verify()
        g.remove_edge(0, 1)
        index.edge_removed(0, 1)
        assert index.verify()

    def test_vertex_dropped_after_draining_edges(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        index = DynamicCoreIndex(g)
        for u in list(g.neighbors(3)):
            g.remove_edge(3, u)
            index.edge_removed(3, u)
        g.remove_vertex(3)
        index.vertex_dropped(3)
        assert 3 not in index.core_numbers()
        assert index.verify()

    def test_seeded_cores_skip_recomputation(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        seeded = DynamicCoreIndex(g, cores={0: 2, 1: 2, 2: 2})
        assert seeded.verify()
        seeded.insert(2, 3)
        assert seeded.verify()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_edit_sequences_stay_exact(self, seed):
        rng = random.Random(seed)
        g = gnp_graph(30, 0.12, seed=seed)
        index = DynamicCoreIndex(g)
        existing = [tuple(e) for e in g.edges()]
        for step in range(120):
            if existing and rng.random() < 0.45:
                u, v = existing.pop(rng.randrange(len(existing)))
                index.remove(u, v)
            else:
                u = rng.randrange(30)
                v = rng.randrange(30)
                if u == v:
                    continue
                if not g.has_edge(u, v):
                    existing.append((u, v))
                index.insert(u, v)
            if step % 20 == 0:
                assert index.verify(), f"diverged at step {step}"
        assert index.verify()


def _barbell_graph(k1: int, k2: int, bridges, rng) -> Graph:
    """Two cliques plus `bridges` random inter-clique edges — the topology
    where a too-small candidate region would show: high-core components
    connected through low-core bridge vertices."""
    g = Graph()
    for i in range(k1):
        for j in range(i + 1, k1):
            g.add_edge(i, j)
    for i in range(k2):
        for j in range(i + 1, k2):
            g.add_edge(k1 + i, k1 + j)
    for _ in range(bridges):
        g.add_edge(rng.randrange(k1), k1 + rng.randrange(k2))
    return g


class TestCandidateRegionDifferential:
    """Pin down the candidate-region semantics (issue: code vs docstring).

    The BFS in ``_candidate_region`` traverses only ``core == root``
    vertices; an earlier docstring claimed paths through ``core ≥ root``
    vertices were required. These tests recompute the full decomposition
    after *every* edit on bridge-heavy graphs — the structures where a
    core-r region reachable only through higher-core vertices would arise
    if the tighter traversal were wrong — and confirm the code side: the
    changed set is always chained to an edge endpoint through core-root
    vertices, so the ``core == root`` subcore suffices.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_bridge_heavy_edits_verify_after_every_edit(self, seed):
        rng = random.Random(seed)
        g = _barbell_graph(5, 5, bridges=rng.randrange(1, 4), rng=rng)
        n = 14  # leaves ids 10..13 as initially absent vertices
        index = DynamicCoreIndex(g)
        assert index.verify()
        for step in range(140):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if g.has_edge(u, v):
                index.remove(u, v)
            else:
                index.insert(u, v)
            assert index.verify(), f"diverged at step {step} on edit ({u}, {v})"

    @pytest.mark.parametrize("seed", range(4))
    def test_pendant_trees_on_dense_core(self, seed):
        # Core-1 chains hanging off a dense core: insertions between chain
        # tips route any rise through the high-core hub vertices.
        rng = random.Random(seed)
        g = gnp_graph(8, 0.6, seed=seed)
        for i in range(8, 20):
            g.add_edge(i, rng.randrange(i))
        index = DynamicCoreIndex(g)
        for step in range(120):
            u, v = rng.randrange(20), rng.randrange(20)
            if u == v:
                continue
            if g.has_edge(u, v):
                index.remove(u, v)
            else:
                index.insert(u, v)
            assert index.verify(), f"diverged at step {step} on edit ({u}, {v})"


class TestDynamicProfiledGraph:
    def make(self, seed=0):
        tax = synthetic_taxonomy(40, seed=seed)
        pg = simple_profiled_graph(tax, 25, seed=seed, edge_probability=0.25)
        return DynamicProfiledGraph(pg)

    def test_query_before_any_edit(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        result = dyn.query("D", 2)
        assert len(result) == 2

    def test_edits_keep_queries_exact(self):
        rng = random.Random(1)
        dyn = self.make(seed=1)
        pg = dyn.pg
        for step in range(25):
            u = rng.randrange(25)
            v = rng.randrange(25)
            if u == v:
                continue
            if pg.graph.has_edge(u, v):
                dyn.remove_edge(u, v)
            else:
                dyn.insert_edge(u, v)
            if step % 5 == 0:
                q = rng.randrange(25)
                got = as_vertex_subtree_map(dyn.query(q, 2))
                fresh = as_vertex_subtree_map(pcs(pg, q, 2, method="basic"))
                assert got == fresh, f"diverged at step {step}"

    def test_profile_update_reflected(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        tax = dyn.pg.taxonomy
        dyn.index()  # build once
        # E gains the full CM branch: {B, C, D, E}? E has edges to A, B, D.
        dyn.update_profile("E", [tax.id_of("ML"), tax.id_of("AI"), tax.id_of("DMS")])
        result = dyn.query("D", 2)
        themes = {frozenset(c.subtree.names()) for c in result}
        assert {"r", "CM", "ML", "AI"} in themes
        got = as_vertex_subtree_map(result)
        fresh = as_vertex_subtree_map(pcs(dyn.pg, "D", 2, method="basic"))
        assert got == fresh

    def test_update_profile_unknown_vertex(self):
        dyn = self.make()
        with pytest.raises(VertexNotFoundError):
            dyn.update_profile("nope", [])

    def test_lazy_repair_only_touches_dirty_labels(self):
        dyn = self.make(seed=2)
        dyn.index()
        assert dyn.dirty_label_count == 0
        u, v = 0, 1
        if not dyn.pg.graph.has_edge(u, v):
            dyn.insert_edge(u, v)
        else:
            dyn.remove_edge(u, v)
        assert dyn.dirty_label_count > 0
        dyn.index()
        assert dyn.dirty_label_count == 0

    def test_add_vertex_with_profile(self):
        dyn = DynamicProfiledGraph(fig1_profiled_graph())
        tax = dyn.pg.taxonomy
        dyn.add_vertex("Z", [tax.id_of("ML")])
        dyn.insert_edge("Z", "B")
        dyn.insert_edge("Z", "C")
        dyn.insert_edge("Z", "D")
        got = as_vertex_subtree_map(dyn.query("Z", 2))
        fresh = as_vertex_subtree_map(pcs(dyn.pg, "Z", 2, method="basic"))
        assert got == fresh
        assert any("Z" in members for members in got.values())
