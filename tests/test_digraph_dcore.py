"""Tests for the directed graph container and D-core decomposition."""

import pytest

from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph import DiGraph, d_core_matrix_sizes, d_core_vertices, d_core_within


def directed_cycle(n: int) -> DiGraph:
    return DiGraph((i, (i + 1) % n) for i in range(n))


def bidirected_triangle() -> DiGraph:
    g = DiGraph()
    for u, v in ((0, 1), (1, 2), (2, 0)):
        g.add_arc(u, v)
        g.add_arc(v, u)
    return g


class TestDiGraph:
    def test_arc_bookkeeping(self):
        g = DiGraph([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_arcs == 2
        assert g.has_arc(0, 1) and not g.has_arc(1, 0)

    def test_degrees(self):
        g = DiGraph([(0, 1), (2, 1), (1, 3)])
        assert g.in_degree(1) == 2
        assert g.out_degree(1) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidInputError):
            DiGraph([(1, 1)])

    def test_remove_vertex(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        g.remove_vertex(1)
        assert g.num_arcs == 1
        assert not g.has_arc(0, 1)

    def test_missing_vertex_raises(self):
        g = DiGraph()
        with pytest.raises(VertexNotFoundError):
            g.successors(0)

    def test_subgraph(self):
        g = DiGraph([(0, 1), (1, 2), (2, 0)])
        sub = g.subgraph([0, 1])
        assert sub.num_arcs == 1
        assert sub.has_arc(0, 1)

    def test_to_undirected(self):
        g = DiGraph([(0, 1), (1, 0), (1, 2)])
        und = g.to_undirected()
        assert und.num_edges == 2

    def test_weak_component(self):
        g = DiGraph([(0, 1), (2, 1), (3, 4)])
        assert g.weakly_connected_component(0) == frozenset({0, 1, 2})


class TestDCore:
    def test_directed_cycle_is_1_1_core(self):
        g = directed_cycle(5)
        assert d_core_vertices(g, 1, 1) == frozenset(range(5))
        assert d_core_vertices(g, 2, 1) == frozenset()

    def test_bidirected_triangle(self):
        g = bidirected_triangle()
        assert d_core_vertices(g, 1, 1) == frozenset({0, 1, 2})

    def test_zero_zero_core_is_everything(self):
        g = DiGraph([(0, 1)])
        assert d_core_vertices(g, 0, 0) == frozenset({0, 1})

    def test_negative_rejected(self):
        with pytest.raises(InvalidInputError):
            d_core_vertices(DiGraph(), -1, 0)

    def test_within_with_q(self):
        g = directed_cycle(4)
        g.add_arc(0, 9)  # pendant arc
        community = d_core_within(g, g.vertices(), 1, 1, q=0)
        assert community == frozenset({0, 1, 2, 3})
        assert d_core_within(g, g.vertices(), 1, 1, q=9) == frozenset()

    def test_peeling_cascades(self):
        # chain 0->1->2: removing 2 (out-degree 0) cascades to all.
        g = DiGraph([(0, 1), (1, 2)])
        assert d_core_vertices(g, 0, 1) == frozenset()

    def test_matrix_sizes_monotone(self):
        g = bidirected_triangle()
        matrix = d_core_matrix_sizes(g, 2, 2)
        assert matrix[0][0] == 3
        for k in range(2):
            for l in range(2):
                assert matrix[k][l] >= matrix[k + 1][l]
                assert matrix[k][l] >= matrix[k][l + 1]
