"""Hypothesis property: save → load → replay ≡ in-memory apply.

Random profiled graphs (mixed int/str vertices, random taxonomies and
profiles) take random ``GraphUpdate`` streams. The in-memory timeline
applies every batch directly; the durable timeline snapshots the initial
state, logs each batch to a WAL, then reboots (load + replay). The two
must agree exactly: same version, same topology, same labels, and an
index that answers like a fresh build (the replayed graph repairs its
loaded CP-tree incrementally, so this also exercises the journal path on
snapshot-restored indexes).

The same machinery checks the WAL's version-tagging contract: the version
:func:`~repro.storage.wal.preview_updates` predicts *before* the apply
must equal the version the apply produces.
"""

import random
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.profiled_graph import ProfiledGraph
from repro.engine.updates import GraphUpdate, apply_update
from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.ptree.taxonomy import Taxonomy
from repro.index.cptree import CPTree
from repro.storage import (
    WriteAheadLog,
    encode_payload,
    load_snapshot,
    preview_updates,
    save_snapshot,
)


def assert_graphs_equal(a: ProfiledGraph, b: ProfiledGraph) -> None:
    """Topology, labels, taxonomy and version must all agree."""
    assert a.version == b.version
    assert a.graph.vertex_set() == b.graph.vertex_set()
    assert a.num_edges == b.num_edges
    for v in a.vertices():
        assert a.graph.adjacency()[v] == b.graph.adjacency()[v]
        assert a.labels(v) == b.labels(v)
    assert a.taxonomy.num_nodes == b.taxonomy.num_nodes
    for node in range(a.taxonomy.num_nodes):
        assert a.taxonomy.name(node) == b.taxonomy.name(node)
        assert a.taxonomy.parent(node) == b.taxonomy.parent(node)


def assert_index_equivalent(index: CPTree, reference: ProfiledGraph) -> None:
    """``index`` must answer exactly like a fresh build over ``reference``."""
    fresh = CPTree(reference.graph, reference.all_labels(),
                   reference.taxonomy, validate=False)
    assert set(index.labels()) == set(fresh.labels())
    for label in fresh.labels():
        mine, theirs = index.node(label), fresh.node(label)
        assert mine.vertices == theirs.vertices, label
        for q in sorted(mine.vertices, key=repr)[:4]:
            for k in (1, 2, 3):
                assert mine.cltree.kcore_vertices(q, k) == \
                    theirs.cltree.kcore_vertices(q, k), (label, q, k)

#: Vertex pool: deliberately mixed int/str to cover both intern tags.
VERTICES = [0, 1, 2, 3, 4, "a", "b", "c"]


@st.composite
def profiled_graphs(draw) -> ProfiledGraph:
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    num_tax = draw(st.integers(1, 8))
    tax = Taxonomy()
    for i in range(1, num_tax):
        tax.add(f"L{i}", parent=rng.randrange(i))
    g = Graph()
    for v in draw(st.lists(st.sampled_from(VERTICES), min_size=1, unique=True)):
        g.add_vertex(v)
    pool = list(g.vertices())
    for _ in range(draw(st.integers(0, 12))):
        u, v = rng.choice(pool), rng.choice(pool)
        if u != v:
            g.add_edge(u, v)
    profiles = {
        v: frozenset(rng.sample(range(num_tax), rng.randrange(num_tax)))
        for v in pool
    }
    return ProfiledGraph(g, tax, profiles, validate=False)


@st.composite
def update_batches(draw):
    """Batches of raw update specs; validity is decided at apply time."""
    def one(rng_seed):
        rng = random.Random(rng_seed)
        op = rng.choice(
            ["add_edge", "remove_edge", "add_vertex", "remove_vertex",
             "set_profile"]
        )
        u = rng.choice(VERTICES)
        if op in ("add_edge", "remove_edge"):
            v = rng.choice(VERTICES)
            if u == v:
                op = "remove_vertex"
                return GraphUpdate(op, u)
            return GraphUpdate(op, u, v)
        if op in ("add_vertex", "set_profile"):
            labels = rng.sample(range(8), rng.randrange(3))
            return GraphUpdate(op, u, labels=labels)
        return GraphUpdate(op, u)

    seeds = draw(st.lists(st.lists(st.integers(0, 10_000), min_size=1,
                                   max_size=4), max_size=6))
    return [[one(s) for s in batch] for batch in seeds]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pg=profiled_graphs(), batches=update_batches())
def test_save_load_replay_equals_in_memory_apply(pg, batches):
    with tempfile.TemporaryDirectory() as tmp:
        _check_replay_equivalence(pg, batches, Path(tmp))


def _check_replay_equivalence(pg, batches, tmp_path):
    pg.index()
    snap = tmp_path / "snap.bin"
    save_snapshot(pg, snap)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for batch in batches:
        # Clamp label ids to the actual taxonomy so add_vertex/set_profile
        # are mostly valid; anything still invalid must be rejected whole.
        batch = [
            GraphUpdate(u.op, u.u, u.v,
                        labels=[x % pg.taxonomy.num_nodes for x in u.labels]
                        if u.labels is not None else None)
            for u in batch
        ]
        try:
            _, predicted = preview_updates(pg, batch)
        except ReproError:
            continue  # invalid batch: neither logged nor applied
        wal.append(pg.version, predicted, batch)
        for update in batch:
            apply_update(pg, update)
        # preview's promise: the tag written before the apply is the
        # version the apply lands on.
        assert pg.version == predicted
    rebooted = load_snapshot(snap)
    wal.replay_into(rebooted)
    wal.close()
    assert_graphs_equal(pg, rebooted)
    assert_index_equivalent(rebooted.index(), pg)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pg=profiled_graphs())
def test_encoding_is_canonical(pg):
    """Equal states encode to equal bytes; a re-encoded reload is stable."""
    pg.index()
    blob = encode_payload(pg, pg.index())
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "snap.bin"
        save_snapshot(pg, snap)
        loaded = load_snapshot(snap)
    assert encode_payload(loaded, loaded.index()) == blob
