"""Unit coverage for the subscription tier: matcher, log, manager, routes.

The streaming/differential gauntlets live in ``test_subscribe_stream.py``
and the crash/resume suite in ``test_subscribe_crash.py``; this file pins
the per-component contracts those suites build on:

* :class:`~repro.subscribe.matcher.SubscriptionMatcher` — the dirty-label
  decision table and its selectivity counters;
* :class:`~repro.subscribe.log.SubscriptionLog` — JSONL durability with
  torn-tail tolerance and atomic compaction;
* the :class:`~repro.api.subscription.Subscription` /
  :class:`~repro.api.subscription.CommunityDiff` wire types;
* :class:`~repro.subscribe.manager.SubscriptionManager` — registration
  snapshots, selective re-evaluation on fig1's two label partitions,
  event retention/resume semantics, long-poll, consumer eviction, and
  journal replay across a manager restart;
* the four HTTP routes, driven through ``handle_request`` in-process.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CommunityDiff, CommunityService, Subscription
from repro.datasets import fig1_profiled_graph
from repro.errors import InvalidInputError
from repro.index.maintenance import BatchDamage
from repro.subscribe import (
    SlowConsumerError,
    SubscriptionLog,
    SubscriptionLogError,
    SubscriptionManager,
    SubscriptionMatcher,
    SubscriptionNotFoundError,
)


def _service() -> CommunityService:
    return CommunityService(fig1_profiled_graph(), default_k=2)


def _members(service: CommunityService, vertex, k=None) -> frozenset:
    """The watched set by full recompute: union of all community vertices."""
    result = service.explorer.explore(vertex, k=k)
    out: set = set()
    for community in result.communities:
        out |= community.vertices
    return frozenset(out)


# ---------------------------------------------------------------------------
# matcher
# ---------------------------------------------------------------------------
class TestMatcher:
    def _damage(self, pg, updates) -> BatchDamage:
        """The damage a batch of dict-form updates would report."""
        service = CommunityService(pg)
        captured = {}

        def tap(receipt, damage):
            captured["damage"] = damage

        service.explorer.add_update_hook(tap)
        service.apply_updates(updates)
        return captured["damage"]

    def test_no_damage_information_over_approximates(self):
        assert SubscriptionMatcher.is_affected(frozenset({1}), False, "q", None)

    def test_full_damage_over_approximates(self):
        damage = BatchDamage(full=True)
        assert SubscriptionMatcher.is_affected(frozenset({1}), False, "q", damage)

    def test_sensitive_subscription_always_matches(self):
        damage = BatchDamage(dirty_labels=frozenset({9}))
        assert SubscriptionMatcher.is_affected(frozenset({1}), True, "q", damage)

    def test_empty_footprint_always_matches(self):
        damage = BatchDamage(dirty_labels=frozenset({9}))
        assert SubscriptionMatcher.is_affected(frozenset(), False, "q", damage)

    def test_query_vertex_touched_matches(self):
        damage = BatchDamage(dirty_labels=frozenset({9}), touched=frozenset({"q"}))
        assert SubscriptionMatcher.is_affected(frozenset({1}), False, "q", damage)

    def test_query_vertex_removed_matches(self):
        damage = BatchDamage(dirty_labels=frozenset({9}), removed=frozenset({"q"}))
        assert SubscriptionMatcher.is_affected(frozenset({1}), False, "q", damage)

    def test_disjoint_labels_skip(self):
        damage = BatchDamage(
            dirty_labels=frozenset({9}), touched=frozenset({"x", "y"})
        )
        assert not SubscriptionMatcher.is_affected(
            frozenset({1, 2}), False, "q", damage
        )

    def test_intersecting_labels_match(self):
        damage = BatchDamage(dirty_labels=frozenset({2, 9}))
        assert SubscriptionMatcher.is_affected(frozenset({1, 2}), False, "q", damage)

    def test_decide_counts_selectivity(self):
        matcher = SubscriptionMatcher()
        assert matcher.selectivity == 1.0  # no decisions yet: pessimistic
        damage = BatchDamage(dirty_labels=frozenset({9}))
        assert not matcher.decide(frozenset({1}), False, "q", damage)
        assert matcher.decide(frozenset({9}), False, "q", damage)
        assert matcher.decisions == 2
        assert matcher.affected == 1
        assert matcher.selectivity == 0.5
        assert matcher.stats()["selectivity"] == 0.5

    def test_real_damage_from_engine_batch(self):
        """Edits inside the F/G/H triangle dirty only the labels both
        endpoints share — which never include the CM branch."""
        pg = fig1_profiled_graph()
        tax = pg.taxonomy
        damage = self._damage(
            pg, [{"op": "remove_edge", "u": "F", "v": "G"}]
        )
        assert not damage.full
        cm_branch = {tax.id_of("CM"), tax.id_of("ML"), tax.id_of("AI")}
        assert damage.dirty_labels.isdisjoint(cm_branch)
        # The B-side subscription's root-free footprint misses the batch.
        footprint = pg.labels("B") - {tax.root}
        assert not SubscriptionMatcher.is_affected(footprint, False, "B", damage)


# ---------------------------------------------------------------------------
# log
# ---------------------------------------------------------------------------
class TestLog:
    def test_roundtrip(self, tmp_path):
        log = SubscriptionLog(tmp_path / "subs.jsonl")
        log.append({"op": "register", "subscription": {"id": "s1", "vertex": "B"}})
        log.append({"op": "diff", "diff": {"event_id": 2}})
        log.close()
        entries = list(SubscriptionLog.iter_entries(tmp_path / "subs.jsonl"))
        assert [e["op"] for e in entries] == ["register", "diff"]
        assert log.entries_appended == 2

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(SubscriptionLog.iter_entries(tmp_path / "absent.jsonl")) == []

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "subs.jsonl"
        log = SubscriptionLog(path)
        log.append({"op": "register", "subscription": {}})
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "diff", "di')  # the write the crash tore
        entries = list(SubscriptionLog.iter_entries(path))
        assert [e["op"] for e in entries] == ["register"]

    def test_corruption_before_tail_raises(self, tmp_path):
        path = tmp_path / "subs.jsonl"
        path.write_text('not json\n{"op": "diff"}\n', encoding="utf-8")
        with pytest.raises(SubscriptionLogError):
            list(SubscriptionLog.iter_entries(path))

    def test_entry_without_op_raises(self, tmp_path):
        path = tmp_path / "subs.jsonl"
        path.write_text('{"noop": 1}\n{"op": "diff"}\n', encoding="utf-8")
        with pytest.raises(SubscriptionLogError):
            list(SubscriptionLog.iter_entries(path))

    def test_compact_replaces_atomically(self, tmp_path):
        path = tmp_path / "subs.jsonl"
        log = SubscriptionLog(path)
        for i in range(5):
            log.append({"op": "diff", "diff": {"event_id": i + 1}})
        log.compact([{"op": "register", "subscription": {"id": "s"}}])
        log.append({"op": "diff", "diff": {"event_id": 99}})
        log.close()
        entries = list(SubscriptionLog.iter_entries(path))
        assert [e["op"] for e in entries] == ["register", "diff"]
        assert not path.with_name(path.name + ".tmp").exists()


# ---------------------------------------------------------------------------
# wire types
# ---------------------------------------------------------------------------
class TestWireTypes:
    def test_subscription_new_assigns_id(self):
        sub = Subscription.new("B", k=2)
        assert sub.id
        assert Subscription.from_dict(sub.to_dict()) == sub

    def test_subscription_normalizes_method(self):
        assert Subscription.new("B", method="ADV-P").method == "adv-P"

    def test_subscription_rejects_unknown_fields(self):
        with pytest.raises(InvalidInputError):
            Subscription.from_dict({"vertex": "B", "frequency": "hourly"})

    def test_subscription_requires_vertex(self):
        with pytest.raises(InvalidInputError):
            Subscription.from_dict({"k": 2})

    def test_subscription_rejects_bad_k(self):
        with pytest.raises(InvalidInputError):
            Subscription.new("B", k=-1)
        with pytest.raises(InvalidInputError):
            Subscription.new("B", k=True)

    def test_diff_apply_composes(self):
        base = frozenset({"A", "B"})
        diff = CommunityDiff(
            subscription_id="s", event_id=2, graph_version=3,
            joined=("C",), left=("A",),
        )
        assert diff.apply_to(base) == frozenset({"B", "C"})

    def test_reset_diff_replaces(self):
        diff = CommunityDiff(
            subscription_id="s", event_id=1, graph_version=0,
            joined=("X", "Y"), reset=True,
        )
        assert diff.apply_to(frozenset({"A"})) == frozenset({"X", "Y"})

    def test_reset_with_left_rejected(self):
        with pytest.raises(InvalidInputError):
            CommunityDiff(
                subscription_id="s", event_id=1, graph_version=0,
                left=("A",), reset=True,
            )

    def test_diff_roundtrip(self):
        diff = CommunityDiff(
            subscription_id="s", event_id=4, graph_version=7,
            joined=("Z", "A"), left=("B",),
        )
        again = CommunityDiff.from_dict(json.loads(json.dumps(diff.to_dict())))
        assert again == diff
        assert again.joined == ("A", "Z")  # deterministic wire order


# ---------------------------------------------------------------------------
# manager
# ---------------------------------------------------------------------------
class TestManager:
    def test_register_snapshot_matches_recompute(self):
        service = _service()
        manager = SubscriptionManager(service)
        snap = manager.register(Subscription.new("B", k=2))
        assert snap.reset and snap.event_id == 1
        assert frozenset(snap.joined) == _members(service, "B", k=2)
        assert manager.members(snap.subscription_id) == frozenset(snap.joined)
        manager.close()

    def test_selective_reevaluation_across_partitions(self):
        """Edits confined to the F/G/H triangle must not re-run B's query."""
        service = _service()
        manager = SubscriptionManager(service)
        sub = manager.register(Subscription.new("B", k=2))
        service.apply_updates([{"op": "remove_edge", "u": "F", "v": "G"}])
        stats = manager.stats()
        assert stats["last_batch"] == {"subscriptions": 1, "reevaluated": 0}
        # An edit inside B's partition does re-evaluate (and may diff).
        service.apply_updates([{"op": "remove_edge", "u": "B", "v": "C"}])
        stats = manager.stats()
        assert stats["last_batch"]["reevaluated"] == 1
        assert manager.members(sub.subscription_id) == _members(service, "B", k=2)
        manager.close()

    def test_diff_emitted_when_membership_changes(self):
        service = _service()
        manager = SubscriptionManager(service)
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        before = manager.members(sub_id)
        service.apply_updates(
            [
                {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                {"op": "add_edge", "u": "Z", "v": "B"},
                {"op": "add_edge", "u": "Z", "v": "C"},
                {"op": "add_edge", "u": "Z", "v": "D"},
            ]
        )
        events = manager.events_since(sub_id, last_event_id=1)
        assert len(events) == 1
        diff = events[0]
        assert not diff.reset
        assert diff.event_id == 2
        assert diff.graph_version == service.pg.version
        assert diff.apply_to(before) == _members(service, "B", k=2)
        manager.close()

    def test_events_since_caught_up_and_gap(self):
        service = _service()
        manager = SubscriptionManager(service, event_log_size=2)
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        assert manager.events_since(sub_id, last_event_id=1) == []
        for i in range(4):  # churn Z in and out: 4 diffs, window keeps 2
            if i % 2 == 0:
                service.apply_updates(
                    [
                        {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                        {"op": "add_edge", "u": "Z", "v": "B"},
                        {"op": "add_edge", "u": "Z", "v": "C"},
                        {"op": "add_edge", "u": "Z", "v": "D"},
                    ]
                )
            else:
                service.apply_updates([{"op": "remove_vertex", "u": "Z"}])
        tail = manager.events_since(sub_id, last_event_id=4)
        assert [d.event_id for d in tail] == [5]
        # Cursor 1 predates the retention window: synthetic reset.
        recovered = manager.events_since(sub_id, last_event_id=1)
        assert len(recovered) == 1
        assert recovered[0].reset
        assert frozenset(recovered[0].joined) == manager.members(sub_id)
        manager.close()

    def test_unknown_subscription_raises(self):
        manager = SubscriptionManager(_service())
        with pytest.raises(SubscriptionNotFoundError):
            manager.events_since("nope", last_event_id=0)
        with pytest.raises(SubscriptionNotFoundError):
            manager.members("nope")
        assert manager.unregister("nope") is False
        manager.close()

    def test_unregister_forgets(self):
        manager = SubscriptionManager(_service())
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        assert len(manager) == 1
        assert manager.unregister(sub_id) is True
        assert len(manager) == 0
        with pytest.raises(SubscriptionNotFoundError):
            manager.get(sub_id)
        manager.close()

    def test_poll_timeout_returns_empty(self):
        manager = SubscriptionManager(_service())
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        assert manager.poll(sub_id, last_event_id=1, timeout=0.05) == []
        manager.close()

    def test_poll_returns_backlog_immediately(self):
        manager = SubscriptionManager(_service())
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        events = manager.poll(sub_id, last_event_id=0, timeout=0.0)
        assert len(events) == 1 and events[0].reset

    def test_consumer_receives_pushed_diff(self):
        service = _service()
        manager = SubscriptionManager(service)
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        with manager.consumer(sub_id, last_event_id=1) as consumer:
            service.apply_updates(
                [
                    {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                    {"op": "add_edge", "u": "Z", "v": "B"},
                    {"op": "add_edge", "u": "Z", "v": "C"},
                    {"op": "add_edge", "u": "Z", "v": "D"},
                ]
            )
            batch = consumer.next_batch(timeout=2.0)
            assert batch and batch[0].event_id == 2
            assert "Z" in batch[0].joined
        manager.close()

    def test_slow_consumer_evicted(self):
        service = _service()
        manager = SubscriptionManager(service, consumer_queue_size=1)
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        consumer = manager.consumer(sub_id, last_event_id=1)
        for i in range(3):  # never drained: overflows the 1-slot queue
            if i % 2 == 0:
                service.apply_updates(
                    [
                        {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                        {"op": "add_edge", "u": "Z", "v": "B"},
                        {"op": "add_edge", "u": "Z", "v": "C"},
                        {"op": "add_edge", "u": "Z", "v": "D"},
                    ]
                )
            else:
                service.apply_updates([{"op": "remove_vertex", "u": "Z"}])
        with pytest.raises(SlowConsumerError):
            consumer.next_batch(timeout=0.1)
        assert manager.stats()["evictions"] == 1
        # The subscription survives eviction; only the consumer died.
        assert manager.members(sub_id) is not None
        manager.close()

    def test_durable_restart_replays_and_catches_up(self, tmp_path):
        log_path = tmp_path / "subscriptions.jsonl"
        service = _service()
        manager = SubscriptionManager(service, log_path=log_path)
        sub = Subscription.new("B", k=2)
        manager.register(sub)
        service.apply_updates(
            [
                {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                {"op": "add_edge", "u": "Z", "v": "B"},
                {"op": "add_edge", "u": "Z", "v": "C"},
                {"op": "add_edge", "u": "Z", "v": "D"},
            ]
        )
        members = manager.members(sub.id)
        manager.close()
        # Same log + a service whose graph moved while nobody watched:
        # replay restores the subscription, catch_up() emits the delta.
        service2 = _service()
        service2.apply_updates(
            [
                {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                {"op": "add_edge", "u": "Z", "v": "B"},
                {"op": "add_edge", "u": "Z", "v": "C"},
                {"op": "add_edge", "u": "Z", "v": "D"},
                {"op": "remove_edge", "u": "B", "v": "C"},
            ]
        )
        manager2 = SubscriptionManager(service2, log_path=log_path)
        assert [s.id for s in manager2.subscriptions()] == [sub.id]
        assert manager2.members(sub.id) == _members(service2, "B", k=2)
        events = manager2.events_since(sub.id, last_event_id=2)
        composed = members
        for diff in events:
            assert diff.event_id >= 3
            composed = diff.apply_to(composed)
        assert composed == _members(service2, "B", k=2)
        manager2.close()

    def test_compact_log_shrinks_to_registrations(self, tmp_path):
        log_path = tmp_path / "subscriptions.jsonl"
        service = _service()
        manager = SubscriptionManager(service, log_path=log_path)
        sub = Subscription.new("B", k=2)
        manager.register(sub)
        gone = Subscription.new("D", k=2)
        manager.register(gone)
        manager.unregister(gone.id)
        service.apply_updates(
            [
                {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                {"op": "add_edge", "u": "Z", "v": "B"},
                {"op": "add_edge", "u": "Z", "v": "C"},
                {"op": "add_edge", "u": "Z", "v": "D"},
            ]
        )
        manager.compact_log()
        entries = list(SubscriptionLog.iter_entries(log_path))
        assert [e["op"] for e in entries] == ["register"]
        snap = CommunityDiff.from_dict(entries[0]["snapshot"])
        assert snap.reset and frozenset(snap.joined) == manager.members(sub.id)
        manager.close()
        # The compacted log boots a manager in the same state.
        manager2 = SubscriptionManager(_service_with_z(), log_path=log_path)
        assert manager2.members(sub.id) == frozenset(snap.joined)
        manager2.close()

    def test_disconnect_consumers_keeps_journal_live(self, tmp_path):
        """Drain phase 1: streams end, but in-flight writes still journal."""
        log_path = tmp_path / "subscriptions.jsonl"
        service = _service()
        manager = SubscriptionManager(service, log_path=log_path)
        sub_id = manager.register(Subscription.new("B", k=2)).subscription_id
        consumer = manager.consumer(sub_id, last_event_id=1)
        manager.disconnect_consumers()
        assert consumer.next_batch(timeout=0.1) is None  # stream over
        # A write that was in flight during the drain still journals.
        service.apply_updates(
            [
                {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
                {"op": "add_edge", "u": "Z", "v": "B"},
                {"op": "add_edge", "u": "Z", "v": "C"},
                {"op": "add_edge", "u": "Z", "v": "D"},
            ]
        )
        ops = [e["op"] for e in SubscriptionLog.iter_entries(log_path)]
        assert ops == ["register", "diff"]
        # New consumers during the drain get the backlog, then end.
        late = manager.consumer(sub_id, last_event_id=1)
        batch = late.next_batch(timeout=0.1)
        assert batch and batch[0].event_id == 2
        assert late.next_batch(timeout=0.1) is None
        manager.close()


def _service_with_z() -> CommunityService:
    """fig1 plus the Z vertex the durable-restart tests add."""
    service = _service()
    service.apply_updates(
        [
            {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
            {"op": "add_edge", "u": "Z", "v": "B"},
            {"op": "add_edge", "u": "Z", "v": "C"},
            {"op": "add_edge", "u": "Z", "v": "D"},
        ]
    )
    return service


# ---------------------------------------------------------------------------
# HTTP routes (in-process, no socket)
# ---------------------------------------------------------------------------
class TestRoutes:
    @pytest.fixture()
    def gateway(self):
        from repro.server.gateway import CommunityGateway

        gw = CommunityGateway(_service(), coalesce=False)
        try:
            yield gw
        finally:
            gw.close()

    def _call(self, gateway, method, path, payload=None):
        from repro.server.app import handle_request

        body = b"" if payload is None else json.dumps(payload).encode()
        response = handle_request(gateway, method, path, body)
        decoded = json.loads(response.body) if response.body else {}
        return response.status, decoded

    def test_subscribe_roundtrip(self, gateway):
        status, decoded = self._call(
            gateway, "POST", "/subscribe", {"vertex": "B", "k": 2}
        )
        assert status == 200
        sub = Subscription.from_dict(decoded["subscription"])
        snap = CommunityDiff.from_dict(decoded["snapshot"])
        assert snap.reset and snap.subscription_id == sub.id
        status, decoded = self._call(
            gateway, "POST", "/subscribe/poll",
            {"id": sub.id, "last_event_id": 0, "timeout": 0},
        )
        assert status == 200
        assert decoded["count"] == 1
        assert decoded["events"][0]["reset"] is True
        status, _ = self._call(gateway, "POST", "/unsubscribe", {"id": sub.id})
        assert status == 200

    def test_subscribe_rejects_unknown_fields(self, gateway):
        status, decoded = self._call(
            gateway, "POST", "/subscribe", {"vertex": "B", "cadence": "fast"}
        )
        assert status == 400
        assert decoded["error"]["type"] == "invalid_input"

    def test_unsubscribe_unknown_is_404(self, gateway):
        status, decoded = self._call(gateway, "POST", "/unsubscribe", {"id": "nope"})
        assert status == 404
        assert decoded["error"]["type"] == "subscription_not_found"

    def test_poll_unknown_is_404(self, gateway):
        status, _ = self._call(
            gateway, "POST", "/subscribe/poll", {"id": "nope", "last_event_id": 0}
        )
        assert status == 404

    def test_poll_rejects_bad_cursor(self, gateway):
        status, _ = self._call(
            gateway, "POST", "/subscribe/poll", {"id": "s", "last_event_id": -1}
        )
        assert status == 400

    def test_stream_unknown_is_404(self, gateway):
        status, _ = self._call(
            gateway, "POST", "/subscribe/stream", {"id": "nope"}
        )
        assert status == 404

    def test_health_and_stats_report_subscriptions(self, gateway):
        self._call(gateway, "POST", "/subscribe", {"vertex": "B", "k": 2})
        assert gateway.health()["subscriptions"] == 1
        stats = gateway.stats()["subscriptions"]
        assert stats["subscriptions"] == 1
        assert stats["durable"] is False
