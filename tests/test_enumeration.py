"""Tests for rightmost-path subtree enumeration and Lemma 1."""

import random

import pytest

from repro.errors import InvalidInputError
from repro.ptree import (
    PTree,
    ROOT,
    Taxonomy,
    addable_nodes,
    count_subtrees,
    enumerate_subtrees,
    generate_subtrees,
    lemma1_bound,
    lemma1_recurrence,
    rightmost_extensions,
)


def star_taxonomy(leaves: int) -> Taxonomy:
    tax = Taxonomy()
    for i in range(leaves):
        tax.add(f"leaf{i}")
    return tax


def chain_taxonomy(length: int) -> Taxonomy:
    tax = Taxonomy()
    parent = ROOT
    for i in range(length):
        parent = tax.add(f"n{i}", parent=parent)
    return tax


def random_taxonomy(rng: random.Random, n: int) -> Taxonomy:
    tax = Taxonomy()
    for i in range(1, n):
        tax.add(f"L{i}", parent=rng.randrange(i))
    return tax


class TestLemma1:
    @pytest.mark.parametrize("x", range(0, 12))
    def test_recurrence_equals_closed_form(self, x):
        assert lemma1_recurrence(x) == lemma1_bound(x)

    def test_star_attains_bound(self):
        # a root with x-1 leaf children has exactly 2^(x-1) + 1 subtrees
        for leaves in range(0, 6):
            tax = star_taxonomy(leaves)
            base = PTree.from_nodes(tax, list(tax.nodes()))
            count = len(list(enumerate_subtrees(base)))
            assert count == lemma1_bound(leaves + 1)

    def test_chain_is_linear(self):
        tax = chain_taxonomy(5)
        base = PTree.from_nodes(tax, list(tax.nodes()))
        # chain of 6 nodes: subtrees are prefixes + empty = 7
        assert len(list(enumerate_subtrees(base))) == 7

    def test_bound_never_exceeded_on_random_trees(self):
        rng = random.Random(0)
        for _ in range(20):
            tax = random_taxonomy(rng, rng.randint(2, 9))
            base = PTree.from_nodes(tax, list(tax.nodes()))
            count = len(list(enumerate_subtrees(base)))
            assert count <= lemma1_bound(len(base))

    def test_negative_rejected(self):
        with pytest.raises(InvalidInputError):
            lemma1_bound(-1)
        with pytest.raises(InvalidInputError):
            lemma1_recurrence(-1)


class TestEnumeration:
    def test_includes_empty_by_default(self):
        tax = star_taxonomy(1)
        base = PTree.from_nodes(tax, list(tax.nodes()))
        subs = list(enumerate_subtrees(base))
        assert frozenset() in subs

    def test_exclude_empty(self):
        tax = star_taxonomy(1)
        base = PTree.from_nodes(tax, list(tax.nodes()))
        subs = list(enumerate_subtrees(base, include_empty=False))
        assert frozenset() not in subs

    def test_no_duplicates_and_all_closed(self):
        rng = random.Random(1)
        for _ in range(25):
            tax = random_taxonomy(rng, rng.randint(3, 10))
            base = PTree.from_nodes(tax, list(tax.nodes()))
            subs = list(enumerate_subtrees(base))
            assert len(subs) == len(set(subs))
            for s in subs:
                assert tax.is_ancestor_closed(s)
                assert s <= base.nodes

    def test_completeness_vs_count(self):
        rng = random.Random(2)
        for _ in range(15):
            tax = random_taxonomy(rng, rng.randint(2, 10))
            base = PTree.from_nodes(tax, list(tax.nodes()))
            assert len(list(enumerate_subtrees(base))) == count_subtrees(base)

    def test_partial_base(self):
        tax = random_taxonomy(random.Random(3), 10)
        base = PTree.from_nodes(tax, [5, 7])
        subs = set(enumerate_subtrees(base))
        assert all(s <= base.nodes for s in subs)
        assert base.nodes in subs

    def test_empty_base(self):
        tax = star_taxonomy(2)
        base = PTree.empty(tax)
        assert list(enumerate_subtrees(base)) == [frozenset()]

    def test_pruning_cuts_branches(self):
        tax = star_taxonomy(4)
        base = PTree.from_nodes(tax, list(tax.nodes()))
        all_subs = list(enumerate_subtrees(base))
        pruned = list(enumerate_subtrees(base, prune=lambda s: len(s) >= 2))
        assert len(pruned) < len(all_subs)
        assert all(len(s) <= 2 for s in pruned)


class TestExtensions:
    def test_addable_from_empty_is_root(self):
        tax = star_taxonomy(2)
        base = frozenset(tax.nodes())
        assert addable_nodes(tax, base, frozenset()) == [ROOT]

    def test_addable_respects_parent(self):
        tax = chain_taxonomy(3)
        base = frozenset(tax.nodes())
        current = frozenset({ROOT})
        assert addable_nodes(tax, base, current) == [tax.id_of("n0")]

    def test_rightmost_subset_of_addable(self):
        rng = random.Random(4)
        tax = random_taxonomy(rng, 12)
        base = frozenset(tax.nodes())
        current = tax.closure([5])
        rightmost = set(rightmost_extensions(tax, base, current))
        assert rightmost <= set(addable_nodes(tax, base, current))

    def test_generate_subtree_matches_paper_signature(self):
        tax = star_taxonomy(3)
        base = frozenset(tax.nodes())
        children = generate_subtrees(tax, base, frozenset({ROOT}))
        assert len(children) == 3
        for child in children:
            assert len(child) == 2 and ROOT in child
