"""Tests for the five PCS query algorithms on the paper's example."""

import pytest

from repro.core import (
    PCS_METHODS,
    FeasibilityOracle,
    expand_ptree,
    find_initial_cut_decre,
    find_initial_cut_incre,
    find_initial_cut_path,
    pcs,
)
from repro.datasets import fig1_profiled_graph
from repro.errors import InvalidInputError
from repro.ptree.taxonomy import ROOT


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


def result_map(result):
    return {c.subtree.nodes: c.vertices for c in result}


class TestFig1AllMethods:
    """PCS(q=D, k=2) must return the paper's two PCs for every method."""

    @pytest.mark.parametrize("method", PCS_METHODS)
    def test_two_pcs(self, pg, method):
        result = pcs(pg, "D", 2, method=method)
        tax = pg.taxonomy
        expected = {
            tax.closure([tax.id_of("ML"), tax.id_of("AI")]): frozenset("BCD"),
            tax.closure([tax.id_of("DMS")]): frozenset("ADE"),
        }
        assert result_map(result) == expected
        assert result.method.lower() == method.lower()

    @pytest.mark.parametrize("method", PCS_METHODS)
    def test_k3_single_pc(self, pg, method):
        result = pcs(pg, "D", 3, method=method)
        assert len(result) == 1
        community = result[0]
        assert community.vertices == frozenset("ABDE")
        assert community.subtree.nodes == frozenset({ROOT})

    @pytest.mark.parametrize("method", PCS_METHODS)
    def test_no_community_when_k_too_large(self, pg, method):
        assert len(pcs(pg, "D", 4, method=method)) == 0

    @pytest.mark.parametrize("method", PCS_METHODS)
    def test_triangle_component(self, pg, method):
        result = pcs(pg, "F", 2, method=method)
        assert len(result) == 1
        assert result[0].vertices == frozenset("FGH")
        # F, G, H share only the root (HW for F,G,H? F: IS,HW; G: CM,HW; H: IS,HW)
        names = result[0].subtree.names()
        assert names == {"r", "HW"}

    def test_unknown_method_rejected(self, pg):
        with pytest.raises(InvalidInputError):
            pcs(pg, "D", 2, method="turbo")

    def test_negative_k_rejected(self, pg):
        with pytest.raises(InvalidInputError):
            pcs(pg, "D", -1)


class TestResultShape:
    def test_communities_contain_query(self, pg):
        for method in PCS_METHODS:
            for community in pcs(pg, "D", 2, method=method):
                assert "D" in community

    def test_min_degree_satisfied(self, pg):
        for community in pcs(pg, "D", 2):
            for v in community.vertices:
                deg = sum(
                    1 for u in pg.graph.neighbors(v) if u in community.vertices
                )
                assert deg >= 2

    def test_subtree_is_maximal_common_subtree(self, pg):
        # For maximal feasible subtrees, T == M(Gk[T]).
        for community in pcs(pg, "D", 2):
            common = None
            for v in community.vertices:
                labels = pg.labels(v)
                common = labels if common is None else common & labels
            assert community.subtree.nodes == common

    def test_summary_and_sorting(self, pg):
        result = pcs(pg, "D", 2)
        text = result.summary()
        assert "2 communities" in text
        sizes = [len(c.subtree) for c in result]
        assert sizes == sorted(sizes, reverse=True)

    def test_elapsed_and_verifications_recorded(self, pg):
        result = pcs(pg, "D", 2)
        assert result.elapsed_seconds > 0
        assert result.num_verifications > 0


class TestInitialCutFinders:
    @pytest.mark.parametrize(
        "finder",
        [find_initial_cut_incre, find_initial_cut_decre, find_initial_cut_path],
    )
    def test_finders_return_valid_cut(self, pg, finder):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        cut = finder(oracle)
        assert cut is not None
        infeasible, feasible = cut
        assert oracle.is_feasible(feasible)
        if infeasible is not None:
            assert not oracle.is_feasible(infeasible)
            assert feasible < infeasible
            assert len(infeasible) == len(feasible) + 1

    @pytest.mark.parametrize(
        "finder",
        [find_initial_cut_incre, find_initial_cut_decre, find_initial_cut_path],
    )
    def test_finders_none_when_no_community(self, pg, finder):
        oracle = FeasibilityOracle(pg, "D", 4, index=pg.index())
        assert finder(oracle) is None

    @pytest.mark.parametrize(
        "finder",
        [find_initial_cut_decre, find_initial_cut_path],
    )
    def test_full_profile_feasible_special_case(self, pg, finder):
        # k=3 from D: only {r} is feasible... use a query whose whole P-tree
        # is feasible: C with k=2 shares its full tree with B and D.
        oracle = FeasibilityOracle(pg, "C", 2, index=pg.index())
        cut = finder(oracle)
        assert cut is not None
        infeasible, feasible = cut
        assert infeasible is None
        assert feasible == pg.labels("C")

    def test_expand_from_each_cut_gives_same_answer(self, pg):
        expected = None
        for finder in (
            find_initial_cut_incre,
            find_initial_cut_decre,
            find_initial_cut_path,
        ):
            oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
            cut = finder(oracle)
            results = expand_ptree(oracle, cut)
            if expected is None:
                expected = results
            else:
                assert results == expected


class TestEmptyProfileQuery:
    def test_query_without_profile(self):
        from repro.core import ProfiledGraph
        from repro.datasets import fig1_taxonomy
        from repro.graph import Graph

        tax = fig1_taxonomy()
        g = Graph([(0, 1), (1, 2), (2, 0)])
        pg = ProfiledGraph(g, tax, {})  # nobody has a profile
        for method in PCS_METHODS:
            result = pcs(pg, 0, 2, method=method)
            assert len(result) == 1
            assert result[0].vertices == frozenset({0, 1, 2})
            assert len(result[0].subtree) == 0
