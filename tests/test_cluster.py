"""Failure-injection gauntlet for the replication tier (subprocesses).

The CI ``replication`` job runs this module alongside
``tests/test_replication.py``. Each test boots a real
:class:`~repro.replication.cluster.LocalCluster` — one writer, two
replicas and a router, four separate processes — then injects the
failures the tier is designed to absorb:

* ``kill -9`` a replica mid-stream: the router keeps answering, and the
  restarted replica resumes from its own WAL position (no resync);
* ``kill -9`` the writer: reads stay up (stale but versioned), writes
  answer 503 with ``Retry-After``, and a restarted writer recovers by
  WAL replay and accepts writes again.

Ground truth throughout is a shadow in-process
:class:`~repro.api.CommunityService` that applied the same updates —
the same construction ``tests/test_durability.py`` uses.
"""

import pytest

from repro.api import CommunityService, Query
from repro.datasets import fig1_profiled_graph
from repro.replication import LocalCluster
from repro.server import ServerClient, ServerError

#: Effective single-batch updates against fig1 (labels are taxonomy
#: names), split so tests can write before *and* after a failure.
FIRST_WAVE = [
    {"op": "add_vertex", "u": "Z1", "labels": ["ML", "DMS"]},
    {"op": "add_edge", "u": "Z1", "v": "A"},
    {"op": "add_edge", "u": "Z1", "v": "B"},
    {"op": "add_vertex", "u": "Z2", "labels": ["AI"]},
]
SECOND_WAVE = [
    {"op": "add_edge", "u": "Z2", "v": "Z1"},
    {"op": "set_profile", "u": "Z2", "labels": ["IS", "HW"]},
    {"op": "remove_edge", "u": "A", "v": "B"},
    {"op": "add_edge", "u": "Z2", "v": "C"},
]

#: Queries whose answers must match the shadow service byte for byte.
PROBES = [Query(vertex="D", k=2), Query(vertex="Z1", k=1), Query(vertex="A", k=1)]


def _shadow(updates):
    """``(version, answers)`` from an in-process service — ground truth."""
    with CommunityService(fig1_profiled_graph()) as shadow:
        if updates:
            shadow.apply_updates(updates)
        return shadow.pg.version, [_signature(shadow.query(p)) for p in PROBES]


def _signature(response):
    """Order-stable answer signature for one query response."""
    return (
        response.matched,
        sorted(
            (tuple(sorted(c.vertices, key=repr)), c.theme)
            for c in response.communities
        ),
    )


def _routed_answers(client, min_version):
    """Probe answers through the router, pinned at ``min_version``."""
    return [_signature(client.query(p, min_version=min_version)) for p in PROBES]


def _member_client(url: str) -> ServerClient:
    host, port = url.removeprefix("http://").rsplit(":", 1)
    return ServerClient(host, int(port))


@pytest.mark.replication
class TestLocalCluster:
    def test_routed_answers_match_shadow_service(self):
        expected_version, expected = _shadow(FIRST_WAVE + SECOND_WAVE)
        with LocalCluster(replicas=2) as cluster:
            with cluster.client(retries=3) as client:
                receipt = client.update(FIRST_WAVE + SECOND_WAVE)
                assert receipt["graph_version"] == expected_version
                # min_version pins read-your-writes: whichever backend
                # answers must already reflect the whole batch.
                assert _routed_answers(client, expected_version) == expected
                health = client.healthz()
            assert health["role"] == "router"
            assert health["last_write_version"] == expected_version

    def test_replica_killed_mid_stream_resumes_from_wal(self):
        expected_version, expected = _shadow(FIRST_WAVE + SECOND_WAVE)
        with LocalCluster(replicas=2) as cluster:
            with cluster.client(retries=3) as client:
                client.update(FIRST_WAVE)
                cluster.wait_ready()  # both replicas hold the first wave
                cluster.kill_replica(0)
                # The router absorbs the loss inside a single request:
                # the dead backend fails over to the surviving replica.
                first_version, _ = _shadow(FIRST_WAVE)
                assert (
                    _routed_answers(client, first_version)
                    == _shadow(FIRST_WAVE)[1]
                )
                client.update(SECOND_WAVE)
                cluster.restart_replica(0)
                cluster.wait_ready()
                assert _routed_answers(client, expected_version) == expected
            # The restarted replica rebooted from its own snapshot + WAL
            # and resubscribed from that position — no snapshot refetch.
            with _member_client(cluster.replica_urls[0]) as replica:
                vitals = replica.healthz()["replication"]
            assert vitals["resyncs"] == 0
            assert vitals["lag_versions"] == 0

    def test_writer_killed_reads_stay_up_and_recovery_accepts_writes(self):
        first_version, first_answers = _shadow(FIRST_WAVE)
        with LocalCluster(replicas=2) as cluster:
            with cluster.client(retries=3) as client:
                client.update(FIRST_WAVE)
                cluster.wait_ready()
                cluster.kill_writer()
                # Stale-but-versioned reads: every replica already holds
                # version N, so pinned reads still succeed and answers
                # are exactly the pre-kill state.
                assert _routed_answers(client, first_version) == first_answers
            with cluster.client(retries=0) as impatient:
                with pytest.raises(ServerError) as err:
                    impatient.update(SECOND_WAVE)
                assert err.value.status == 503
                assert err.value.error_type == "writer_unavailable"
                assert err.value.retry_after is not None
            cluster.restart_writer()  # WAL replay restores version N
            cluster.wait_ready()
            expected_version, expected = _shadow(FIRST_WAVE + SECOND_WAVE)
            with cluster.client(retries=3) as client:
                receipt = client.update(SECOND_WAVE)
                assert receipt["graph_version"] == expected_version
                assert _routed_answers(client, expected_version) == expected
