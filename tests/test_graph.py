"""Unit tests for repro.graph.graph (the undirected container)."""

import pytest

from repro.errors import InvalidInputError, VertexNotFoundError
from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.is_connected()  # by convention

    def test_edges_in_constructor(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g

    def test_duplicate_edge_ignored(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(InvalidInputError):
            g.add_edge(3, 3)

    def test_add_vertices_bulk(self):
        g = Graph()
        g.add_vertices(range(5))
        assert g.num_vertices == 5
        assert g.num_edges == 0


class TestMutation:
    def test_remove_edge(self):
        g = Graph([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_edge_absent_noop(self):
        g = Graph([(0, 1)])
        g.remove_edge(0, 2)
        assert g.num_edges == 1

    def test_remove_vertex(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert 1 not in g
        assert g.num_edges == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(9)


class TestQueries:
    def test_degree_and_neighbors(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.neighbors(0) == {1, 2, 3}
        assert g.degree(1) == 1

    def test_neighbors_missing_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFoundError):
            g.neighbors("nope")

    def test_average_degree(self):
        g = Graph([(0, 1), (1, 2)])
        assert g.average_degree() == pytest.approx(4 / 3)
        assert Graph().average_degree() == 0.0

    def test_edges_yields_each_once(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        edges = {frozenset(e) for e in g.edges()}
        assert edges == {frozenset((0, 1)), frozenset((1, 2)), frozenset((2, 0))}
        assert len(list(g.edges())) == 3

    def test_len_and_iter(self):
        g = Graph([(0, 1)])
        assert len(g) == 2
        assert set(iter(g)) == {0, 1}

    def test_vertex_set_frozen(self):
        g = Graph([(0, 1)])
        assert g.vertex_set() == frozenset({0, 1})


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_subgraph_induced(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert not sub.has_edge(3, 0)

    def test_subgraph_ignores_unknown(self):
        g = Graph([(0, 1)])
        sub = g.subgraph([0, 1, 99])
        assert sub.num_vertices == 2


class TestTraversal:
    def test_component_of(self):
        g = Graph([(0, 1), (1, 2), (5, 6)])
        assert g.component_of(0) == frozenset({0, 1, 2})
        assert g.component_of(5) == frozenset({5, 6})

    def test_component_of_within(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert g.component_of(0, within=[0, 1, 3]) == frozenset({0, 1})

    def test_component_of_missing_source_raises(self):
        g = Graph([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            g.component_of(9)

    def test_connected_components_sorted_by_size(self):
        g = Graph([(0, 1), (1, 2), (5, 6)])
        comps = g.connected_components()
        assert [len(c) for c in comps] == [3, 2]

    def test_is_connected(self):
        assert Graph([(0, 1), (1, 2)]).is_connected()
        assert not Graph([(0, 1), (2, 3)]).is_connected()

    def test_bfs_order_starts_at_source(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        order = g.bfs_order(2)
        assert order[0] == 2
        assert set(order) == {0, 1, 2, 3}

    def test_bfs_order_unknown_source_raises(self):
        # Regression: the membership check must run before any traversal
        # state is seeded, so a bad source raises instead of returning a
        # phantom [source] ordering.
        g = Graph([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            g.bfs_order(99)
