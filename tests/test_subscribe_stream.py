"""Differential stress: an edit stream racing concurrent SSE subscribers.

One real :class:`~repro.server.gateway.CommunityGateway` (sockets, not
``handle_request``), three subscribers streaming over SSE from separate
threads — one per fig1 label partition (B's CM side, A's IS side, the
F/G/H triangle) — while the main thread pushes edit batches through
``POST /update``. A shadow :class:`~repro.api.CommunityService` applies
the identical batches in-process, recording the full-recompute watched
set at every acknowledged ``graph_version``; each diff a subscriber
receives must compose to exactly the shadow's answer at the version the
diff is tagged with. The final batch touches all three partitions so
every subscriber provably has a last event to wait for, and the
dirty-label matcher must have *skipped* at least one re-evaluation across
the partition-local batches (the selectivity the benchmark gates).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import CommunityService, Subscription
from repro.datasets import fig1_profiled_graph
from repro.server import ServerClient
from repro.server.client import ServerError
from repro.server.gateway import CommunityGateway

#: (query vertex, k) per subscriber — one per fig1 partition.
WATCHES = [("B", 2), ("A", 2), ("F", 2)]

#: Edit batches; each ``client.update`` call is one batch (one receipt,
#: one matcher decision round). Comments say which partitions they touch.
BATCHES = [
    [  # CM side: Z joins B's community
        {"op": "add_vertex", "u": "Z", "labels": ["ML", "AI"]},
        {"op": "add_edge", "u": "Z", "v": "B"},
        {"op": "add_edge", "u": "Z", "v": "C"},
        {"op": "add_edge", "u": "Z", "v": "D"},
    ],
    [{"op": "remove_vertex", "u": "Z"}],  # CM side: Z leaves
    [  # IS side: W joins A's community
        {"op": "add_vertex", "u": "W", "labels": ["DMS"]},
        {"op": "add_edge", "u": "W", "v": "A"},
        {"op": "add_edge", "u": "W", "v": "D"},
        {"op": "add_edge", "u": "W", "v": "E"},
    ],
    [{"op": "remove_vertex", "u": "W"}],  # IS side: W leaves
    [{"op": "remove_edge", "u": "F", "v": "G"}],  # triangle collapses
    [{"op": "add_edge", "u": "F", "v": "G"}],  # triangle restored
    [  # sentinel: every partition gains a member → every sub gets a diff
        {"op": "add_vertex", "u": "ZB", "labels": ["ML", "AI"]},
        {"op": "add_edge", "u": "ZB", "v": "B"},
        {"op": "add_edge", "u": "ZB", "v": "C"},
        {"op": "add_edge", "u": "ZB", "v": "D"},
        {"op": "add_vertex", "u": "ZA", "labels": ["DMS"]},
        {"op": "add_edge", "u": "ZA", "v": "A"},
        {"op": "add_edge", "u": "ZA", "v": "D"},
        {"op": "add_edge", "u": "ZA", "v": "E"},
        {"op": "add_vertex", "u": "ZF", "labels": ["HW"]},
        {"op": "add_edge", "u": "ZF", "v": "F"},
        {"op": "add_edge", "u": "ZF", "v": "G"},
        {"op": "add_edge", "u": "ZF", "v": "H"},
    ],
]


def _watched(service: CommunityService, vertex, k) -> frozenset:
    result = service.explorer.explore(vertex, k=k)
    members: set = set()
    for community in result.communities:
        members |= community.vertices
    return frozenset(members)


class _Subscriber(threading.Thread):
    """One SSE consumer: subscribes, streams, records every diff."""

    def __init__(self, host: str, port: int, vertex, k: int) -> None:
        super().__init__(name=f"subscriber-{vertex}", daemon=True)
        self.client = ServerClient(host, port, timeout=30.0, retries=1)
        self.subscription, self.snapshot = self.client.subscribe(
            Subscription.new(vertex, k=k)
        )
        self.diffs: list = []
        self.error: Exception | None = None

    def run(self) -> None:
        try:
            for diff in self.client.subscribe_stream(
                self.subscription.id, last_event_id=self.snapshot.event_id
            ):
                self.diffs.append(diff)
        except ServerError as exc:
            # The drain at the end of the test ends the stream; the client
            # surfaces the dead stream as a typed 503 once its reconnect
            # budget is spent. Anything else is a real failure.
            if exc.error_type != "stream_ended":
                self.error = exc
        except Exception as exc:  # noqa: BLE001 - report to the main thread
            self.error = exc
        finally:
            self.client.close()


@pytest.mark.subscriptions
def test_concurrent_sse_subscribers_match_shadow_replay():
    gateway = CommunityGateway(
        CommunityService(fig1_profiled_graph(), default_k=2),
        port=0,
        coalesce=False,
        sse_keepalive=0.5,
    ).start()
    subscribers: list[_Subscriber] = []
    try:
        host, port = gateway.address
        subscribers = [_Subscriber(host, port, vertex, k) for vertex, k in WATCHES]
        for sub in subscribers:
            sub.start()

        writer = ServerClient(host, port, timeout=30.0, retries=1)
        shadow = CommunityService(fig1_profiled_graph(), default_k=2)
        expected = {}  # graph_version -> {subscription id: watched set}
        versions = []
        for batch in BATCHES:
            receipt = writer.update(batch)["receipt"]
            shadow.apply_updates(batch)
            assert receipt["version"] == shadow.pg.version, (
                "server and shadow disagree on the version one batch produced"
            )
            versions.append(receipt["version"])
            expected[receipt["version"]] = {
                s.subscription.id: _watched(shadow, *w)
                for s, w in zip(subscribers, WATCHES)
            }
            time.sleep(0.02)  # let pushes interleave with the next batch
        final_version = versions[-1]

        # The sentinel batch changed every watched set, so every
        # subscriber eventually holds a diff tagged with the final
        # version — wait for that, then drain.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if all(
                any(d.graph_version == final_version for d in s.diffs)
                for s in subscribers
            ):
                break
            time.sleep(0.05)
        else:
            pytest.fail(
                "subscribers never saw the sentinel diff: "
                + str([[d.to_dict() for d in s.diffs] for s in subscribers])
            )

        gateway.subscriptions.disconnect_consumers()
        for sub in subscribers:
            sub.join(timeout=10.0)
            assert not sub.is_alive(), "subscriber thread failed to drain"
            assert sub.error is None, f"subscriber raised: {sub.error!r}"

        for sub, (vertex, k) in zip(subscribers, WATCHES):
            # Gapless per-subscription event ids, starting right after
            # the registration snapshot.
            ids = [d.event_id for d in sub.diffs]
            assert ids == list(
                range(sub.snapshot.event_id + 1, sub.snapshot.event_id + 1 + len(ids))
            ), f"{vertex}: event ids {ids} are not contiguous"
            # Every received diff lands on an acknowledged version and
            # composes to the shadow's full recompute at that version.
            members = frozenset(sub.snapshot.joined)
            for diff in sub.diffs:
                assert diff.graph_version in expected, (
                    f"{vertex}: diff tagged unknown version {diff.graph_version}"
                )
                members = diff.apply_to(members)
                assert members == expected[diff.graph_version][sub.subscription.id], (
                    f"{vertex}: composed membership diverges from the shadow "
                    f"at version {diff.graph_version}"
                )
            assert members == expected[final_version][sub.subscription.id]

        # The partition-local batches must have been skipped for the
        # partitions they cannot touch — the matcher's whole point.
        matcher = gateway.subscriptions.stats()["matcher"]
        assert matcher["affected"] < matcher["decisions"], (
            f"matcher never skipped a re-evaluation: {matcher}"
        )
        writer.close()
        shadow.close()
    finally:
        gateway.close()
