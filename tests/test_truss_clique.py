"""Tests for truss decomposition and k-clique communities."""

import pytest

from repro.errors import InvalidInputError
from repro.graph import (
    Graph,
    connected_k_truss,
    edge_supports,
    gnp_graph,
    k_clique_communities,
    k_clique_community_of,
    k_clique_within,
    k_truss_edges,
    k_truss_subgraph,
    k_truss_within,
    maximal_cliques,
    ring_of_cliques,
    truss_numbers,
)


def k5_graph() -> Graph:
    g = Graph()
    for i in range(5):
        for j in range(i + 1, 5):
            g.add_edge(i, j)
    return g


class TestEdgeSupports:
    def test_triangle(self):
        g = Graph([(0, 1), (1, 2), (2, 0)])
        supports = edge_supports(g)
        assert all(s == 1 for s in supports.values())
        assert len(supports) == 3

    def test_no_triangles(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert all(s == 0 for s in edge_supports(g).values())


class TestTrussNumbers:
    def test_k5_truss(self):
        truss = truss_numbers(k5_graph())
        # every edge of K5 lies in 3 triangles -> truss number 5
        assert all(t == 5 for t in truss.values())

    def test_triangle_with_tail(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        truss = truss_numbers(g)
        assert truss[(2, 3)] == 2
        assert truss[(0, 1)] == 3

    def test_empty(self):
        assert truss_numbers(Graph()) == {}

    def test_truss_core_containment(self):
        # A k-truss is always inside the (k-1)-core.
        from repro.graph import k_core_vertices

        g = gnp_graph(60, 0.15, seed=5)
        for k in (3, 4):
            truss_vertices = k_truss_subgraph(g, k).vertex_set()
            core = k_core_vertices(g, k - 1)
            assert truss_vertices <= core


class TestKTrussExtraction:
    def test_k_below_two_rejected(self):
        with pytest.raises(InvalidInputError):
            k_truss_edges(Graph(), 1)

    def test_connected_k_truss(self):
        g = ring_of_cliques(2, 4)
        community = connected_k_truss(g, 0, 4)
        assert community == frozenset({0, 1, 2, 3})

    def test_connected_k_truss_absent_q(self):
        g = Graph([(0, 1)])
        assert connected_k_truss(g, 0, 3) == frozenset()

    def test_k_truss_within_restriction(self):
        g = k5_graph()
        assert k_truss_within(g, range(5), 4, q=0) == frozenset(range(5))
        assert k_truss_within(g, [0, 1, 2], 4, q=0) == frozenset()

    def test_k_truss_within_no_q(self):
        g = k5_graph()
        assert k_truss_within(g, range(5), 5) == frozenset(range(5))


class TestMaximalCliques:
    def test_k5_single_clique(self):
        cliques = list(maximal_cliques(k5_graph()))
        assert cliques == [frozenset(range(5))]

    def test_path_cliques_are_edges(self):
        g = Graph([(0, 1), (1, 2)])
        cliques = {frozenset(c) for c in maximal_cliques(g)}
        assert cliques == {frozenset({0, 1}), frozenset({1, 2})}

    def test_counts_on_random_graph(self):
        g = gnp_graph(25, 0.3, seed=2)
        cliques = list(maximal_cliques(g))
        adj = g.adjacency()
        for clique in cliques:
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert v in adj[u]


class TestKCliqueCommunities:
    def test_two_overlapping_triangles(self):
        # triangles 0,1,2 and 1,2,3 share edge {1,2}: one 3-clique community
        g = Graph([(0, 1), (1, 2), (2, 0), (1, 3), (2, 3)])
        comms = k_clique_communities(g, 3)
        assert comms == [frozenset({0, 1, 2, 3})]

    def test_disjoint_triangles_two_communities(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)])
        comms = k_clique_communities(g, 3)
        assert len(comms) == 2

    def test_k_below_two_rejected(self):
        with pytest.raises(InvalidInputError):
            k_clique_communities(Graph(), 1)

    def test_community_of_q(self):
        g = Graph([(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 4)])
        assert k_clique_community_of(g, 4, 3) == frozenset({4, 5, 6})
        assert k_clique_community_of(g, 0, 4) == frozenset()

    def test_within_restriction(self):
        g = k5_graph()
        assert k_clique_within(g, [0, 1, 2], 3, q=0) == frozenset({0, 1, 2})
        assert k_clique_within(g, range(5), 5) == frozenset(range(5))
