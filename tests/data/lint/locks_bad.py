"""Seeded lock-discipline violations (fixture — never imported)."""

import threading


class Counter:
    """Guards ``_count`` in ``bump`` but reads it unguarded in ``peek``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._data = {}

    def bump(self):
        """Guarded write: makes ``_count`` and ``_data`` guarded attrs."""
        with self._lock:
            self._count += 1
            self._data["total"] = self._count

    def peek(self):
        """VIOLATION: unguarded read of a guarded attribute."""
        return self._count

    def reset(self):
        """VIOLATION: unguarded subscript write to a guarded dict."""
        self._data["total"] = 0
