"""Clean twin: honest __all__, safe defaults, handled exceptions."""

import logging
from typing import Optional, Union

__all__ = ["PUBLIC_CONSTANT", "exported"]

#: A nullable alias — the implicit-Optional rule must resolve it.
IntLike = Union[int, None]

PUBLIC_CONSTANT = 1

#: Lowercase module values and type aliases stay optional in __all__.
alias = dict

_log = logging.getLogger(__name__)


def exported(items=None):
    """None default, mutable created inside — no finding."""
    return list(items or ())


def _maybe(
    flag: Optional[int] = None,
    other: "int | None" = None,
    seed: IntLike = None,
    blob=None,
):
    """None defaults carried by nullable (or absent) annotations."""
    return flag, other, seed, blob


def _private_helper():
    """Private names never belong in __all__."""
    try:
        exported()
    except ValueError:
        return None
    except Exception:
        _log.exception("handled, not swallowed")
        return None
