"""Clean twin: honest __all__, safe defaults, handled exceptions."""

import logging

__all__ = ["PUBLIC_CONSTANT", "exported"]

PUBLIC_CONSTANT = 1

#: Lowercase module values and type aliases stay optional in __all__.
alias = dict

_log = logging.getLogger(__name__)


def exported(items=None):
    """None default, mutable created inside — no finding."""
    return list(items or ())


def _private_helper():
    """Private names never belong in __all__."""
    try:
        exported()
    except ValueError:
        return None
    except Exception:
        _log.exception("handled, not swallowed")
        return None
