"""Clean twin of locks_bad.py: every access honours the discipline."""

import threading


class Counter:
    """All ``_count`` access goes through the lock (or sanctioned forms)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._data = {}

    def bump(self):
        """Guarded write."""
        with self._lock:
            self._count += 1
            self._data["total"] = self._count

    def peek(self):
        """Guarded read — no finding."""
        with self._lock:
            return self._count

    def _drain_locked(self):
        """The ``_locked`` suffix asserts the caller holds the lock."""
        self._data.clear()
        return self._count


class Unlocked:
    """No lock is ever created, so nothing here is guarded."""

    def __init__(self):
        self._count = 0

    def bump(self):
        """Unguarded state in a lockless class is fine."""
        self._count += 1
