"""Clean twin: server (rank 8) importing graph (rank 1) flows downward.

Also exercises the two sanctioned upward idioms — a ``TYPE_CHECKING``
import and a function-local import — which must not be flagged.
"""

from typing import TYPE_CHECKING

from repro.graph import adjacency  # noqa: F401  (fixture; never imported)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cli import main  # noqa: F401


def lazy_use():
    """Function-local upward import: deliberate cycle-breaker, exempt."""
    from repro.cli import main  # noqa: F401

    return main
