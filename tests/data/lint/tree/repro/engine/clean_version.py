"""Clean twin: every version read uses a sanctioned pinning shape."""

import threading


class Engine:
    """All four sanctioned shapes, none of which may be flagged."""

    def __init__(self, pg, cache):
        self.pg = pg
        self._cache = cache
        self._lock = threading.Lock()

    def _run_stable(self, key):
        """Sanctioned: _run_stable itself re-validates its reads."""
        version = self.pg.version
        return key, version

    def under_lock(self):
        """Sanctioned: the lock pins the graph for the read."""
        with self._lock:
            return self.pg.version

    def cache_lookup(self, key):
        """Sanctioned: flows into the epoch-checked versioned cache."""
        direct = self._cache.get_versioned(key, self.pg.version, None)
        version = self.pg.version
        via_local = self._cache.get_versioned(key, version, None)
        return direct, via_local

    def monitoring(self):
        """Sanctioned: dict-literal value — a point-in-time observation."""
        return {"version": self.pg.version}
