"""Seeded version-tagging violation (fixture — never imported)."""


class Engine:
    """Tags a result with a version read outside any pin."""

    def __init__(self, pg):
        self.pg = pg

    def answer(self):
        """VIOLATION: unpinned version read tags the result."""
        result = {"communities": []}
        return result, self.pg.version
