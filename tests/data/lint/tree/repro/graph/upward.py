"""Seeded layer-DAG violation: graph (rank 1) imports server (rank 8)."""

from repro.server import gateway  # noqa: F401  (fixture; never imported)
