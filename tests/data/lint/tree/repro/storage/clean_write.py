"""Clean twin: the full tmp+fsync+replace+dir-fsync protocol."""

import os


def _fsync_directory(path):
    """Directory fsync so the rename itself is durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(target, payload):
    """The sanctioned shape (mirrors repro.storage.snapshot.save_snapshot)."""
    tmp = str(target) + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    _fsync_directory(os.path.dirname(target) or ".")


def read_only(path):
    """Read-mode opens are outside the protocol's scope."""
    with open(path, "rb") as fh:
        return fh.read()
