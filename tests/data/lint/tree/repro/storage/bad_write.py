"""Seeded durability-protocol violations (fixture — never imported)."""

import os
from pathlib import Path


def naked_write(path):
    """VIOLATION: write-mode open with no fsync/replace downstream."""
    with open(path, "w") as fh:
        fh.write("hello")


def replace_without_fsync(tmp, target):
    """VIOLATION (x2): replace with no fsync before or after."""
    os.replace(tmp, target)


def helper_write(path):
    """VIOLATION: Path.write_text can never follow the protocol."""
    Path(path).write_text("hello")
