"""Clean twin: the public surface is fully documented."""


class Documented:
    """A documented class."""

    def __init__(self, value):
        self.value = value

    def method(self):
        """A documented method."""
        return self.value

    def __repr__(self):
        return f"Documented({self.value!r})"

    def hook(self):
        pass


def _private():
    return 1
