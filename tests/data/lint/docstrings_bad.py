"""Module docstring present; the class and function below lack theirs."""


class Undocumented:

    def method(self):
        value = 1
        return value


def undocumented_function():
    return 2
