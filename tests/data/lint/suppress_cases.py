"""Suppression-policy fixture: one of each suppression behaviour.

Seeded with api-hygiene violations so there is something to suppress;
linted with ``--select api-hygiene`` by the tests.
"""


def justified(items=[]):  # repro-lint: disable=api-hygiene -- fixture exercising a justified suppression
    """Silenced: justified suppression on the same line."""
    return items


# repro-lint: disable=api-hygiene -- fixture exercising a preceding-line suppression
def justified_above(items=[]):
    """Silenced: justified suppression on the line above."""
    return items


def unjustified(items=[]):  # repro-lint: disable=api-hygiene
    """NOT silenced (no justification) and flagged as a policy violation."""
    return items


def wrong_id(items=[]):  # repro-lint: disable=layer-dag -- names a checker that finds nothing here
    """NOT silenced (wrong id); not judged stale when layer-dag is unselected."""
    return items


# repro-lint: disable=api-hygiene -- nothing below violates api-hygiene
def stale_entry():
    """Clean function: the entry above silences nothing and is flagged stale."""
    return None
