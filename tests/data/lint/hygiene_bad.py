"""Seeded api-hygiene violations (fixture — never imported)."""

from typing import List

__all__ = ["exported", "GHOST"]

PUBLIC_CONSTANT = 1


def exported(items=[]):
    """VIOLATION on the signature: mutable default argument."""
    return items


def _implicit(flag: int = None, items: List[str] = None):
    """VIOLATIONS: None defaults contradicting non-Optional annotations."""
    return flag, items


def swallow():
    """VIOLATIONS: a bare except and a silent except-Exception."""
    try:
        exported()
    except:
        return None
    try:
        exported()
    except Exception:
        pass
