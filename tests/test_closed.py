"""Tests for the closure-jumping ``closed`` method (library extension)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import as_vertex_subtree_map, closed_query, pcs
from repro.datasets import fig1_profiled_graph

from tests.test_equivalence import brute_force, random_instance


@pytest.fixture(scope="module")
def pg():
    return fig1_profiled_graph()


class TestClosedOnFig1:
    def test_matches_paper_answer(self, pg):
        result = pcs(pg, "D", 2, method="closed")
        expected = pcs(pg, "D", 2, method="incre")
        assert as_vertex_subtree_map(result) == as_vertex_subtree_map(expected)
        assert result.method == "closed"

    def test_k3(self, pg):
        result = pcs(pg, "D", 3, method="closed")
        assert len(result) == 1
        assert result[0].vertices == frozenset("ABDE")

    def test_no_community(self, pg):
        assert len(pcs(pg, "D", 4, method="closed")) == 0

    def test_without_index(self, pg):
        result = closed_query(pg, "D", 2)  # index optional
        assert len(result) == 2

    def test_fewer_verifications_than_incre(self, pg):
        closed = pcs(pg, "D", 2, method="closed")
        incre = pcs(pg, "D", 2, method="incre")
        assert closed.num_verifications <= incre.num_verifications


class TestClosedEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_against_brute_force(self, seed):
        pg, q, k = random_instance(seed)
        expected = brute_force(pg, q, k)
        got = as_vertex_subtree_map(pcs(pg, q, k, method="closed"))
        assert got == expected

    @pytest.mark.parametrize("seed", range(15, 22))
    def test_against_brute_force_themed(self, seed):
        pg, q, k = random_instance(seed, themed=True)
        expected = brute_force(pg, q, k)
        got = as_vertex_subtree_map(pcs(pg, q, k, method="closed"))
        assert got == expected

    def test_empty_profile_query(self):
        from repro.core import ProfiledGraph
        from repro.datasets import fig1_taxonomy
        from repro.graph import Graph

        tax = fig1_taxonomy()
        g = Graph([(0, 1), (1, 2), (2, 0)])
        pg = ProfiledGraph(g, tax, {})
        result = pcs(pg, 0, 2, method="closed")
        assert len(result) == 1
        assert result[0].vertices == frozenset({0, 1, 2})


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_closed_equals_reference(seed):
    pg, q, k = random_instance(seed)
    expected = as_vertex_subtree_map(pcs(pg, q, k, method="incre"))
    got = as_vertex_subtree_map(pcs(pg, q, k, method="closed"))
    assert got == expected
