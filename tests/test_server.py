"""Tests for the HTTP serving gateway (`repro.server`).

Layered like the package: coalescer semantics without any transport,
routing/error mapping through :func:`repro.server.app.handle_request`
without a socket, then full HTTP round-trips over a real
:class:`~repro.server.gateway.CommunityGateway` — equivalence with direct
:class:`~repro.api.service.CommunityService` answers on all six methods,
coalesced vs uncoalesced agreement, admission control (429), graceful
drain, and concurrent clients racing ``POST /update`` with every
response's ``graph_version`` validated.
"""

import email.utils
import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import CommunityService, Middleware, Query
from repro.core import ALL_METHODS
from repro.datasets import fig1_profiled_graph
from repro.engine.updates import GraphUpdate
from repro.errors import VertexNotFoundError
from repro.server.client import _parse_retry_after
from repro.server import (
    CoalescerClosedError,
    CommunityGateway,
    QueueFullError,
    RequestCoalescer,
    ServerClient,
    ServerError,
    handle_request,
)


@contextmanager
def serving(pg_or_service, **kwargs):
    """A started gateway + connected client, both torn down afterwards."""
    gateway = CommunityGateway(pg_or_service, port=0, **kwargs)
    gateway.start()
    host, port = gateway.address
    client = ServerClient(host, port)
    try:
        yield gateway, client
    finally:
        client.close()
        gateway.close()


class SlowMiddleware(Middleware):
    """Hold every query for ``delay`` seconds (drain/overflow scenarios)."""

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def before(self, query, service):
        time.sleep(self.delay)
        return None


def envelope(response, *drop):
    payload = response.to_dict() if hasattr(response, "to_dict") else dict(response)
    payload.pop("elapsed_ms", None)
    for key in drop:
        payload.pop(key, None)
    return payload


# ----------------------------------------------------------------------
# coalescer (no transport)
# ----------------------------------------------------------------------
class TestRequestCoalescer:
    def test_concurrent_submits_share_a_batch(self):
        service = CommunityService(fig1_profiled_graph())
        batch_calls = []
        original = service.batch

        def counting_batch(items, **kw):
            items = list(items)
            batch_calls.append(len(items))
            return original(items, **kw)

        service.batch = counting_batch
        coalescer = RequestCoalescer(service, window=0.05)
        queries = [Query(vertex=v, k=2) for v in ("D", "E", "A", "D")]
        results = [None] * len(queries)

        def submit(i):
            results[i] = coalescer.submit(queries[i])

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalescer.close()

        assert all(r is not None for r in results)
        # Everything arrived within one window: a single dispatched batch.
        assert batch_calls == [4]
        # Answers match direct service answers, aligned with submitters.
        # (cache_hit and plan are timing provenance: a later direct query
        # plans against a now-warm index, a batch plans once up front.)
        direct = CommunityService(fig1_profiled_graph())
        for query, response in zip(queries, results):
            expected = direct.query(query)
            assert envelope(response, "cache_hit", "plan") == envelope(
                expected, "cache_hit", "plan"
            )
            assert response.method == expected.method
        stats = coalescer.stats()
        assert stats["submitted"] == 4
        assert stats["dispatched_batches"] == 1
        assert stats["coalesced_requests"] == 4
        assert stats["mean_batch_size"] == 4.0

    def test_window_zero_still_answers(self):
        coalescer = RequestCoalescer(CommunityService(fig1_profiled_graph()), window=0)
        response = coalescer.submit(Query(vertex="D", k=2))
        assert response.returned == 2
        coalescer.close()

    def test_queue_overflow_raises_queue_full(self):
        service = CommunityService(
            fig1_profiled_graph(), middleware=[SlowMiddleware(0.3)]
        )
        coalescer = RequestCoalescer(service, window=0, max_batch=1, max_queue=1)
        outcomes = []
        lock = threading.Lock()

        def submit():
            try:
                outcomes.append(("ok", coalescer.submit(Query(vertex="D", k=2))))
            except QueueFullError as exc:
                with lock:
                    outcomes.append(("full", exc))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalescer.close()

        kinds = [kind for kind, _ in outcomes]
        assert "full" in kinds, "admission control never triggered"
        assert "ok" in kinds, "every request was refused"
        rejected = next(exc for kind, exc in outcomes if kind == "full")
        assert rejected.retry_after > 0
        assert coalescer.stats()["rejected"] >= 1

    def test_submit_after_close_is_refused(self):
        coalescer = RequestCoalescer(CommunityService(fig1_profiled_graph()))
        coalescer.close()
        assert coalescer.closed
        with pytest.raises(CoalescerClosedError):
            coalescer.submit(Query(vertex="D", k=2))

    def test_close_drains_queued_requests(self):
        service = CommunityService(
            fig1_profiled_graph(), middleware=[SlowMiddleware(0.05)]
        )
        coalescer = RequestCoalescer(service, window=0.5)  # far future dispatch
        results = []

        def submit(vertex):
            results.append(coalescer.submit(Query(vertex=vertex, k=2)))

        threads = [threading.Thread(target=submit, args=(v,)) for v in ("D", "E")]
        for t in threads:
            t.start()
        time.sleep(0.1)  # both queued, window still open
        coalescer.close()  # must answer them, not abandon them
        for t in threads:
            t.join()
        assert len(results) == 2
        assert all(r.returned >= 1 for r in results)

    def test_bad_vertex_fails_alone_not_its_batchmates(self):
        service = CommunityService(fig1_profiled_graph())
        batch_calls = []
        original = service.batch

        def counting_batch(items, **kw):
            items = list(items)
            batch_calls.append(len(items))
            return original(items, **kw)

        service.batch = counting_batch
        coalescer = RequestCoalescer(service, window=0.05)
        outcomes = {}

        def submit(vertex):
            try:
                outcomes[vertex] = coalescer.submit(Query(vertex=vertex, k=2))
            except VertexNotFoundError as exc:
                outcomes[vertex] = exc

        threads = [
            threading.Thread(target=submit, args=(v,)) for v in ("D", "nope", "E")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        coalescer.close()

        assert isinstance(outcomes["nope"], VertexNotFoundError)
        assert outcomes["D"].returned == 2
        assert outcomes["E"].returned >= 1
        # The poisoned request must not collapse its batchmates to serial
        # per-request execution: the valid remainder still ships as one
        # batch (dedup preserved), the bad vertex never reaches the service.
        assert batch_calls == [2]

    def test_constructor_validation(self):
        service = CommunityService(fig1_profiled_graph())
        with pytest.raises(ValueError):
            RequestCoalescer(service, window=-1)
        with pytest.raises(ValueError):
            RequestCoalescer(service, max_batch=0)
        with pytest.raises(ValueError):
            RequestCoalescer(service, max_queue=0)


# ----------------------------------------------------------------------
# routing + error mapping (no socket)
# ----------------------------------------------------------------------
class TestHandleRequest:
    @pytest.fixture()
    def gateway(self):
        # Unstarted: no socket, no coalescer — pure routing logic.
        return CommunityGateway(fig1_profiled_graph(), coalesce=False)

    def call(self, gateway, method, path, payload=None, raw=None):
        body = raw if raw is not None else (
            b"" if payload is None else json.dumps(payload).encode()
        )
        response = handle_request(gateway, method, path, body)
        decoded = (
            json.loads(response.body)
            if response.content_type.startswith("application/json")
            else response.body.decode()
        )
        return response, decoded

    def test_query_roundtrip(self, gateway):
        response, decoded = self.call(
            gateway, "POST", "/query", Query(vertex="D", k=2).to_dict()
        )
        assert response.status == 200
        assert decoded["returned"] == 2
        assert decoded["query"]["vertex"] == "D"

    def test_unknown_path_404(self, gateway):
        response, decoded = self.call(gateway, "GET", "/nope")
        assert response.status == 404
        assert decoded["error"]["type"] == "not_found"

    def test_wrong_verb_405_with_allow(self, gateway):
        response, decoded = self.call(gateway, "GET", "/query")
        assert response.status == 405
        assert decoded["error"]["type"] == "method_not_allowed"
        assert dict(response.headers)["Allow"] == "POST"
        response, _ = self.call(gateway, "POST", "/healthz")
        assert response.status == 405

    def test_bad_json_400(self, gateway):
        response, decoded = self.call(gateway, "POST", "/query", raw=b"{not json")
        assert response.status == 400
        assert decoded["error"]["type"] == "invalid_input"

    def test_unknown_query_field_400(self, gateway):
        response, decoded = self.call(
            gateway, "POST", "/query", {"vertex": "D", "methud": "basic"}
        )
        assert response.status == 400
        assert "methud" in decoded["error"]["message"]

    def test_missing_vertex_400(self, gateway):
        response, _ = self.call(gateway, "POST", "/query", {"k": 2})
        assert response.status == 400

    def test_unknown_vertex_404(self, gateway):
        response, decoded = self.call(
            gateway, "POST", "/query", {"vertex": "missing", "k": 2}
        )
        assert response.status == 404
        assert decoded["error"]["type"] == "vertex_not_found"

    def test_batch_payload_shapes(self, gateway):
        ok, decoded = self.call(
            gateway, "POST", "/batch", {"queries": [{"vertex": "D", "k": 2}]}
        )
        assert ok.status == 200 and decoded["count"] == 1
        assert decoded["batch_plan"]["mode"] in ("inline", "parallel")
        bare, decoded = self.call(gateway, "POST", "/batch", [{"vertex": "D", "k": 2}])
        assert bare.status == 200 and decoded["count"] == 1
        for payload in ({}, {"queries": []}, {"queries": "D"}, {"wrong": []}, 7):
            response, _ = self.call(gateway, "POST", "/batch", payload)
            assert response.status == 400, payload

    def test_update_bad_op_400(self, gateway):
        response, decoded = self.call(
            gateway, "POST", "/update", {"updates": [{"op": "explode", "u": "D"}]}
        )
        assert response.status == 400
        assert "explode" in decoded["error"]["message"]

    def test_payload_too_large_413(self, gateway):
        gateway.max_body_bytes = 64
        response, decoded = self.call(gateway, "POST", "/query", raw=b"x" * 65)
        assert response.status == 413
        assert decoded["error"]["type"] == "payload_too_large"

    def test_path_normalisation(self, gateway):
        response, _ = self.call(gateway, "GET", "/healthz/")
        assert response.status == 200
        response, _ = self.call(gateway, "GET", "/healthz?verbose=1")
        assert response.status == 200

    def test_unexpected_error_500(self, gateway, monkeypatch):
        def boom(query):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(gateway, "dispatch_query", boom)
        response, decoded = self.call(
            gateway, "POST", "/query", Query(vertex="D", k=2).to_dict()
        )
        assert response.status == 500
        assert "kaboom" in decoded["error"]["message"]


# ----------------------------------------------------------------------
# full HTTP round trips
# ----------------------------------------------------------------------
class TestEndpointEquivalence:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_http_query_equals_direct_service(self, method):
        pg = fig1_profiled_graph()
        reference = CommunityService(pg)
        direct = reference.query(Query(vertex="D", k=2, method=method))
        with serving(CommunityService(pg)) as (gateway, client):
            served = client.query(Query(vertex="D", k=2, method=method))
        # Byte-equivalence modulo timings: same communities, same
        # provenance, same plan, same graph version.
        assert json.dumps(envelope(served), sort_keys=True) == json.dumps(
            envelope(direct), sort_keys=True
        )

    def test_http_batch_equals_direct_service(self):
        pg = fig1_profiled_graph()
        queries = [Query(vertex=v, k=2) for v in ("D", "E", "A", "D")]
        direct = CommunityService(pg).batch(queries)
        with serving(CommunityService(pg)) as (gateway, client):
            served = client.batch(queries)
        # The direct batch ran first and left the shared graph's index warm,
        # so the served batch's plan *reason* differs; the answers (and the
        # chosen method) must not.
        assert [envelope(r, "plan") for r in served] == [
            envelope(r, "plan") for r in direct
        ]
        assert [r.method for r in served] == [r.method for r in direct]

    def test_update_applies_through_mutation_path(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            before = client.query(Query(vertex="D", k=2))
            receipt = client.update(
                [("add_edge", "Z", "D"), {"op": "set_profile", "u": "Z",
                                          "labels": ["ML"]}]
            )
            assert receipt["receipt"]["applied"] == 2
            assert receipt["graph_version"] > before.graph_version
            after = client.query(Query(vertex="D", k=2))
            assert after.graph_version == receipt["graph_version"]
            assert after.cache_hit is False  # mutation invalidated the entry

    def test_coalesced_equals_uncoalesced_under_concurrency(self):
        queries = [Query(vertex=v, k=2) for v in ("D", "E", "A")] * 4

        def hammer(client):
            answers = [None] * len(queries)

            def one(i):
                answers[i] = client_pool[i].query(queries[i])

            client_pool = [
                ServerClient(client.host, client.port) for _ in queries
            ]
            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for c in client_pool:
                c.close()
            return answers

        with serving(fig1_profiled_graph(), coalesce=True,
                     coalesce_window=0.05) as (gateway, client):
            coalesced = hammer(client)
            assert gateway.coalescer.stats()["coalesced_requests"] > 0
        with serving(fig1_profiled_graph(), coalesce=False) as (gateway, client):
            uncoalesced = hammer(client)

        # cache_hit and plan provenance legally differ between the modes
        # (an uncoalesced repeat can hit the cache, and a request planned
        # after the first one sees a warm index); the answers must not.
        for a, b in zip(coalesced, uncoalesced):
            assert envelope(a, "cache_hit", "plan") == envelope(
                b, "cache_hit", "plan"
            )
            assert a.method == b.method


class TestAdmissionControlAndDrain:
    def test_overflow_answers_429_with_retry_after(self):
        service = CommunityService(
            fig1_profiled_graph(), middleware=[SlowMiddleware(0.25)]
        )
        with serving(service, coalesce=True, coalesce_window=0,
                     max_batch=1, max_queue=1) as (gateway, client):
            statuses = []
            lock = threading.Lock()

            def fire():
                with ServerClient(client.host, client.port) as c:
                    try:
                        c.query(Query(vertex="D", k=2))
                        outcome = (200, None)
                    except ServerError as exc:
                        outcome = (exc.status, exc.retry_after)
                with lock:
                    statuses.append(outcome)

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        codes = [status for status, _ in statuses]
        assert 429 in codes, f"no request was refused: {codes}"
        assert 200 in codes, f"every request was refused: {codes}"
        retry_hint = next(hint for status, hint in statuses if status == 429)
        assert retry_hint is not None and retry_hint >= 1.0

    def test_close_drains_in_flight_requests(self):
        service = CommunityService(
            fig1_profiled_graph(), middleware=[SlowMiddleware(0.1)]
        )
        gateway = CommunityGateway(service, port=0, coalesce=True,
                                   coalesce_window=0.4).start()
        host, port = gateway.address
        results = []
        lock = threading.Lock()

        def fire(vertex):
            with ServerClient(host, port) as c:
                response = c.query(Query(vertex=vertex, k=2))
            with lock:
                results.append(response)

        threads = [
            threading.Thread(target=fire, args=(v,)) for v in ("D", "E", "A")
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)  # all three queued behind the window
        gateway.close()  # drain: they must still be answered
        for t in threads:
            t.join()
        assert len(results) == 3
        assert {r.query.vertex for r in results} == {"D", "E", "A"}

    def test_health_reports_draining_after_close(self):
        gateway = CommunityGateway(fig1_profiled_graph(), port=0).start()
        assert gateway.health()["status"] == "ok"
        gateway.close()
        assert gateway.health()["status"] == "draining"


class TestUpdateRaces:
    def test_queries_racing_updates_report_consistent_versions(self):
        pg = fig1_profiled_graph()
        with serving(CommunityService(pg), coalesce=True,
                     coalesce_window=0.002) as (gateway, client):
            stop = threading.Event()
            per_client_versions = {}
            errors = []
            applied_versions = []

            def querier(worker_id, vertex):
                versions = []
                try:
                    with ServerClient(client.host, client.port) as c:
                        for _ in range(15):
                            versions.append(
                                c.query(Query(vertex=vertex, k=2)).graph_version
                            )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                per_client_versions[worker_id] = versions

            def updater():
                try:
                    with ServerClient(client.host, client.port) as c:
                        for i in range(8):
                            receipt = c.update([("add_edge", f"U{i}", "C")])
                            applied_versions.append(receipt["graph_version"])
                            time.sleep(0.01)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    stop.set()

            threads = [
                threading.Thread(target=querier, args=(i, v))
                for i, v in enumerate(["D", "E", "A", "D"])
            ] + [threading.Thread(target=updater)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert not errors, errors
            final_version = applied_versions[-1]
            assert final_version == pg.version
            for worker_id, versions in per_client_versions.items():
                # Sequential requests from one client never go back in time,
                # and every reported version is a version the graph held.
                assert versions == sorted(versions), (worker_id, versions)
                assert all(0 <= v <= final_version for v in versions)
            # The service ends on the updated graph: a fresh probe reflects
            # the final version.
            assert client.query(Query(vertex="D", k=2)).graph_version == final_version


# ----------------------------------------------------------------------
# observability endpoints + client surface
# ----------------------------------------------------------------------
class TestObservability:
    def test_healthz_payload(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["coalescing"] is True
        assert health["graph_version"] == 0
        assert health["uptime_seconds"] >= 0

    def test_stats_payload(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            client.query(Query(vertex="D", k=2))
            client.query(Query(vertex="D", k=2))
            stats = client.stats()
        assert stats["engine"]["queries_served"] == 1
        assert stats["engine"]["cache"]["hits"] == 1
        assert stats["graph"]["version"] == 0
        assert stats["coalescer"]["submitted"] == 2
        recorded = {
            (r["method"], r["endpoint"], r["status"]) for r in
            stats["server"]["requests"]
        }
        assert ("POST", "/query", 200) in recorded

    def test_metrics_prometheus_format(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            client.query(Query(vertex="D", k=2))
            text = client.metrics()
        families = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                kind, name = line.split()[1:3]
                if kind == "TYPE":
                    families.add(name)
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses
            assert name_part.split("{")[0] in families
        for expected in (
            "repro_queries_served_total",
            "repro_cache_hits_total",
            "repro_graph_version",
            "repro_coalescer_batches_total",
            "repro_http_requests_total",
            "repro_server_uptime_seconds",
        ):
            assert expected in families, expected

    def test_unknown_paths_share_one_bounded_counter(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            for path in ("/scan1", "/scan2", "/query/"):
                try:
                    client._request("GET", path)
                except ServerError:
                    pass
            stats = client.stats()
        endpoints = {r["endpoint"] for r in stats["server"]["requests"]}
        # Scanner garbage buckets into one label; "/query/" folds into the
        # canonical route instead of splitting its counter.
        assert "/scan1" not in endpoints and "/scan2" not in endpoints
        assert "(unknown)" in endpoints
        assert "/query" in endpoints

    def test_oversized_content_length_refused_before_read(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            gateway.max_body_bytes = 64
            with pytest.raises(ServerError) as excinfo:
                client.query_raw({"vertex": "D", "k": 2, "method": "x" * 128})
            assert excinfo.value.status == 413
            assert excinfo.value.error_type == "payload_too_large"
            # The connection was closed (unread body), but the client
            # reconnects transparently and the server still works.
            gateway.max_body_bytes = 8 * 1024 * 1024
            assert client.query(Query(vertex="D", k=2)).returned == 2
        with serving(fig1_profiled_graph(), coalesce=False) as (gateway, client):
            text = client.metrics()
        assert "repro_coalescer" not in text
        assert "repro_queries_served_total" in text


class TestClientAndLifecycle:
    def test_client_overrides_and_errors(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            response = client.query(Query(vertex="D"), k=2, limit=1)
            assert response.returned == 1 and response.truncated
            with pytest.raises(ServerError) as excinfo:
                client.query(Query(vertex="missing", k=2))
            assert excinfo.value.status == 404
            assert excinfo.value.error_type == "vertex_not_found"

    def test_gateway_lifecycle_guards(self):
        gateway = CommunityGateway(fig1_profiled_graph(), port=0)
        with pytest.raises(RuntimeError):
            gateway.address
        gateway.start()
        with pytest.raises(RuntimeError):
            gateway.start()
        assert gateway.url.startswith("http://127.0.0.1:")
        gateway.close()
        gateway.close()  # idempotent

    def test_gateway_rejects_non_service(self):
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError):
            CommunityGateway(object())

    def test_warm_builds_index_at_startup(self):
        service = CommunityService(fig1_profiled_graph())
        with serving(service, warm=True):
            assert service.explorer.index_ready


# ----------------------------------------------------------------------
# client retry safety: non-idempotent replay and Retry-After parsing
# ----------------------------------------------------------------------
class TestRetrySafety:
    def test_update_replay_after_connection_death_applies_once(self, monkeypatch):
        """A POST /update whose connection dies after the server-side apply
        but before the response must not double-apply on the client's
        automatic replay — the idempotency key maps the retry back to the
        original receipt."""
        import repro.server.app as app_mod

        original = app_mod.handle_request
        killed = []

        def dying(gateway, method, path, body):
            response = original(gateway, method, path, body)
            if path == "/update" and not killed:
                killed.append(True)
                # The handler thread dies before writing the response: the
                # client sees the connection drop exactly between apply
                # and acknowledgement.
                raise ConnectionError("simulated death after apply")
            return response

        with serving(fig1_profiled_graph()) as (gateway, client):
            gateway._server.handle_error = lambda *args: None  # silence traceback
            monkeypatch.setattr(app_mod, "handle_request", dying)
            before = gateway.service.pg.version
            # remove_vertex is the op whose keyless replay is loudest: the
            # second apply would 404 (the vertex is already gone), so the
            # old client surfaced an error for an update that succeeded —
            # and an add_edge replay would report applied=0, corrupting
            # the receipt. Both must now come back as the first apply.
            receipt = client.update([("remove_vertex", "H"), ("add_edge", "A", "Z")])
            assert killed, "the simulated connection death never fired"
            assert receipt["receipt"]["applied"] == 2
            assert gateway.service.pg.version == before + 2
            assert receipt["graph_version"] == before + 2

    def test_same_key_replay_returns_original_receipt(self):
        with serving(fig1_profiled_graph()) as (gateway, client):
            before = gateway.service.pg.version
            first = client.update([("add_edge", "A", "J")], idempotency_key="k-1")
            replay = client.update([("add_edge", "A", "J")], idempotency_key="k-1")
            assert replay == first
            assert gateway.service.pg.version == before + 1
            # A fresh key is a fresh batch (the edge exists, so no-op receipt).
            other = client.update([("add_edge", "A", "J")], idempotency_key="k-2")
            assert other["receipt"]["applied"] == 0

    def test_idempotency_key_must_be_a_nonempty_string(self):
        gateway = CommunityGateway(fig1_profiled_graph(), port=0)
        for bad in ("", 7, None, ["x"]):
            body = json.dumps(
                {"updates": [{"op": "add_edge", "u": "A", "v": "J"}],
                 "idempotency_key": bad}
            ).encode()
            response = handle_request(gateway, "POST", "/update", body)
            assert response.status == 400, bad

    def test_receipt_cache_is_bounded(self, monkeypatch):
        import repro.server.gateway as gateway_mod

        monkeypatch.setattr(gateway_mod, "IDEMPOTENCY_CACHE_SIZE", 2)
        gateway = CommunityGateway(fig1_profiled_graph(), port=0)
        for i in range(3):
            gateway.apply_updates_idempotent(
                [GraphUpdate.coerce(("add_vertex", f"N{i}"))],
                idempotency_key=f"key-{i}",
            )
        assert list(gateway._idempotency_receipts) == ["key-1", "key-2"]

    def test_retry_after_parses_both_rfc_forms(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("2.5") == 2.5
        assert _parse_retry_after(" 0 ") == 0.0
        assert _parse_retry_after("-3") == 0.0  # clamp, never negative sleep
        future = email.utils.formatdate(time.time() + 60, usegmt=True)
        parsed = _parse_retry_after(future)
        assert parsed is not None and 30 < parsed <= 61
        past = email.utils.formatdate(time.time() - 60, usegmt=True)
        assert _parse_retry_after(past) == 0.0
        # Unparseable values read as absent — the old float() crashed here.
        for garbage in ("soon", "Wed, 99 Nonsense", "1e", ""):
            assert _parse_retry_after(garbage) is None

    def test_http_date_retry_after_reaches_server_error(self, monkeypatch):
        """A 429 whose Retry-After is an HTTP-date must surface as seconds
        on the ServerError instead of crashing the client."""
        import repro.server.app as app_mod

        original = app_mod.handle_request
        stamp = email.utils.formatdate(time.time() + 30, usegmt=True)

        def dated(gateway, method, path, body):
            response = original(gateway, method, path, body)
            if path == "/query":
                return app_mod._error(
                    429, "queue_full", "busy", headers=(("Retry-After", stamp),)
                )
            return response

        with serving(fig1_profiled_graph()) as (gateway, client):
            monkeypatch.setattr(app_mod, "handle_request", dated)
            with pytest.raises(ServerError) as excinfo:
                client.query(Query(vertex="D", k=2))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert 0 < excinfo.value.retry_after <= 31
