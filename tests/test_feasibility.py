"""Tests for the feasibility oracle (Gk[T] computation, Lemma 2/3)."""

import random

import pytest

from repro.core import FeasibilityOracle, KTrussCohesion
from repro.datasets import fig1_profiled_graph, simple_profiled_graph
from repro.datasets.taxonomies import synthetic_taxonomy
from repro.errors import VertexNotFoundError
from repro.graph import k_core_within
from repro.ptree import enumerate_subtrees, PTree
from repro.ptree.taxonomy import ROOT


@pytest.fixture
def pg():
    return fig1_profiled_graph()


def nodes_of(pg, *names):
    return frozenset(pg.taxonomy.id_of(n) for n in names) | {ROOT}


class TestBasicMode:
    """Oracle without index (Algorithm 1 semantics)."""

    def test_fig1_feasible_subtrees(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2)
        assert oracle.community(nodes_of(pg, "CM", "ML", "AI")) == frozenset("BCD")
        assert oracle.community(nodes_of(pg, "IS", "DMS")) == frozenset("ADE")
        assert oracle.community(nodes_of(pg, "CM", "IS")) == frozenset()

    def test_empty_subtree_is_gk(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2)
        assert oracle.community(frozenset()) == frozenset("ABCDE")

    def test_subtree_outside_query_profile_infeasible(self, pg):
        oracle = FeasibilityOracle(pg, "E", 2)  # E has no CM
        assert oracle.community(nodes_of(pg, "CM")) == frozenset()

    def test_unknown_query_rejected(self, pg):
        with pytest.raises(VertexNotFoundError):
            FeasibilityOracle(pg, "ZZ", 2)


class TestIndexMode:
    def test_matches_basic_mode(self, pg):
        index = pg.index()
        with_index = FeasibilityOracle(pg, "D", 2, index=index)
        without = FeasibilityOracle(pg, "D", 2)
        base = PTree(pg.taxonomy, pg.labels("D"), _validated=True)
        for subtree in enumerate_subtrees(base):
            assert with_index.community(subtree) == without.community(subtree)

    def test_incremental_matches_from_scratch(self, pg):
        index = pg.index()
        oracle = FeasibilityOracle(pg, "D", 2, index=index)
        parent = nodes_of(pg, "CM")
        ml = pg.taxonomy.id_of("ML")
        child = parent | {ml}
        incremental = oracle.community_from_parent(child, parent, ml)
        fresh = FeasibilityOracle(pg, "D", 2, index=index).community(child)
        assert incremental == fresh

    @pytest.mark.parametrize("seed", range(3))
    def test_random_cross_check(self, seed):
        tax = synthetic_taxonomy(25, seed=seed)
        pg = simple_profiled_graph(tax, 30, seed=seed, edge_probability=0.25)
        index = pg.index()
        rng = random.Random(seed)
        q = rng.randrange(30)
        k = rng.randint(1, 3)
        indexed = FeasibilityOracle(pg, q, k, index=index)
        plain = FeasibilityOracle(pg, q, k)
        base = PTree(tax, pg.labels(q), _validated=True)
        for subtree in enumerate_subtrees(base):
            expected = k_core_within(
                pg.graph, pg.vertices_with_subtree(subtree), k, q=q
            )
            assert plain.community(subtree) == expected
            assert indexed.community(subtree) == expected


class TestAntiMonotonicity:
    """Lemma 2: supertrees of infeasible subtrees are infeasible."""

    @pytest.mark.parametrize("seed", range(3))
    def test_holds_on_random_instances(self, seed):
        tax = synthetic_taxonomy(15, seed=seed)
        pg = simple_profiled_graph(tax, 25, seed=seed, edge_probability=0.3)
        rng = random.Random(seed)
        q = rng.randrange(25)
        oracle = FeasibilityOracle(pg, q, 2, index=pg.index())
        base = PTree(tax, pg.labels(q), _validated=True)
        subtrees = list(enumerate_subtrees(base, include_empty=False))
        feasible = {s for s in subtrees if oracle.is_feasible(s)}
        for s in subtrees:
            for t in subtrees:
                if s < t and t in feasible:
                    assert s in feasible  # contrapositive of Lemma 2


class TestMaximality:
    def test_fig1_maximal(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        assert oracle.is_maximal(nodes_of(pg, "CM", "ML", "AI"))
        assert oracle.is_maximal(nodes_of(pg, "IS", "DMS"))
        assert not oracle.is_maximal(nodes_of(pg, "CM"))
        assert not oracle.is_maximal(nodes_of(pg, "CM", "IS"))  # infeasible

    def test_verification_counter_monotone(self, pg):
        oracle = FeasibilityOracle(pg, "D", 2, index=pg.index())
        before = oracle.verifications
        oracle.community(nodes_of(pg, "CM"))
        mid = oracle.verifications
        oracle.community(nodes_of(pg, "CM"))  # cached
        assert mid > before
        assert oracle.verifications == mid


class TestAlternativeCohesion:
    def test_truss_oracle(self, pg):
        oracle = FeasibilityOracle(
            pg, "D", 3, index=pg.index(), cohesion=KTrussCohesion()
        )
        # {B, C, D} is a triangle: a 3-truss
        community = oracle.community(nodes_of(pg, "CM", "ML", "AI"))
        assert community == frozenset("BCD")
