"""Process-parallel serving: differential, stress and lifecycle tests.

The contract under test: a :class:`~repro.parallel.ParallelExplorer` (and a
``CommunityService(parallel=N)`` session over one) is observationally
identical to the in-process engine — same results, same provenance, same
cache behaviour — for every method, dataset shape and batch composition;
and serving stays consistent while mutations race queries.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import CommunityService, Query
from repro.core.search import ALL_METHODS, pcs
from repro.datasets import (
    fig1_profiled_graph,
    load_dataset,
    load_ego_network,
)
from repro.engine import MISSING, CommunityExplorer
from repro.errors import InvalidInputError
from repro.graph.generators import random_queries
from repro.parallel import (
    ParallelExplorer,
    WorkerPool,
    build_cptree_parallel,
    build_shard_cltrees,
    decide_batch_mode,
    label_weights,
    merge_shard_builds,
    shard_labels,
)

WORKERS = 2  # plenty to prove multi-process correctness, cheap on small CI


def canonical(result):
    """The *answer* of a PCSResult: query, parameters and communities.

    Instrumentation is excluded: ``elapsed_seconds`` obviously, but also
    ``num_verifications`` — a rebuilt set/dict (an unpickled worker graph)
    can iterate in a different order than the incrementally grown original,
    and traversal order shifts how many candidate subtrees the algorithms
    probe before converging on the *same* communities.
    """
    return (
        result.query,
        result.k,
        result.method,
        [(tuple(sorted(c.subtree.nodes)), c.vertices) for c in result],
    )


def make_parallel(pg, **kwargs):
    """A ParallelExplorer that really ships, even for tiny fixtures."""
    kwargs.setdefault("processes", WORKERS)
    kwargs.setdefault("tiny_graph_vertices", 0)
    kwargs.setdefault("min_batch", 2)
    return ParallelExplorer(pg, **kwargs)


# ----------------------------------------------------------------------
# datasets under differential test (module-scoped: pools are reused)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig1():
    return fig1_profiled_graph()


@pytest.fixture(scope="module")
def synthetic():
    return load_dataset("acmdl", scale=0.005, seed=11)


@pytest.fixture(scope="module")
def ego():
    pg, _ = load_ego_network("fb3", seed=7)
    return pg


def _probe_vertices(pg, k, count=3):
    queries = random_queries(pg.graph, count, k, seed=5)
    assert queries, "dataset fixtures must have a non-empty k-core"
    return queries


# ----------------------------------------------------------------------
# differential: parallel == sequential pcs, all methods, all datasets
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_fig1_all_methods(self, fig1, method):
        specs = [(q, 2, method) for q in ("A", "D", "G")]
        expected = [
            canonical(pcs(fig1, q, k, method=m, index=fig1.index()))
            for q, k, m in specs
        ]
        with make_parallel(fig1, default_k=2) as ex:
            got = [canonical(r) for r in ex.explore_many(specs)]
        assert got == expected

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_synthetic_all_methods(self, synthetic, method):
        k = 6
        specs = [(q, k, method) for q in _probe_vertices(synthetic, k)]
        expected = [
            canonical(pcs(synthetic, q, k, method=method, index=synthetic.index()))
            for q, k, _ in specs
        ]
        with make_parallel(synthetic, default_k=k) as ex:
            got = [canonical(r) for r in ex.explore_many(specs)]
        assert got == expected

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_ego_all_methods(self, ego, method):
        k = 6
        specs = [(q, k, method) for q in _probe_vertices(ego, k, count=2)]
        expected = [
            canonical(pcs(ego, q, k, method=method, index=ego.index()))
            for q, k, _ in specs
        ]
        with make_parallel(ego, default_k=k) as ex:
            got = [canonical(r) for r in ex.explore_many(specs)]
        assert got == expected

    def test_serve_batch_provenance_matches_sequential(self, synthetic):
        k = 6
        queries = _probe_vertices(synthetic, k, count=4)
        specs = [(q, k, "adv-P") for q in queries]
        seq = CommunityExplorer(synthetic, default_k=k)
        with make_parallel(synthetic, default_k=k) as par:
            seq_results, seq_hits = seq.serve_batch(specs)
            par_results, par_hits = par.serve_batch(specs)
            assert [canonical(r) for r in par_results] == [
                canonical(r) for r in seq_results
            ]
            assert par_hits == seq_hits == [False] * len(specs)
            # replay: both serve from their caches
            _, seq_again = seq.serve_batch(specs)
            _, par_again = par.serve_batch(specs)
            assert par_again == seq_again == [True] * len(specs)

    def test_mixed_methods_one_batch(self, fig1):
        specs = [(q, 2, m) for m in ALL_METHODS for q in ("D", "E")]
        expected = [
            canonical(pcs(fig1, q, k, method=m, index=fig1.index()))
            for q, k, m in specs
        ]
        with make_parallel(fig1, default_k=2) as ex:
            assert [canonical(r) for r in ex.explore_many(specs)] == expected


# ----------------------------------------------------------------------
# dedup, falsy results, cache merge
# ----------------------------------------------------------------------
class TestBatchSemantics:
    def test_duplicate_specs_execute_once(self, fig1):
        with make_parallel(fig1, default_k=2) as ex:
            results = ex.explore_many([("D", 2), ("D", 2), ("E", 2), ("D", 2)])
            assert [canonical(r) for r in results[:2]] == [
                canonical(results[0]),
                canonical(results[0]),
            ]
            stats = ex.stats()
            assert stats.queries_served == 2  # D and E, deduplicated
            assert stats.cache.misses == 4  # every incoming spec probed

    def test_falsy_results_cached_and_equal(self, fig1):
        # k far above any degree: every community set is empty (falsy).
        specs = [("D", 99), ("E", 99), ("D", 99)]
        seq = CommunityExplorer(fig1, default_k=2)
        seq_results = seq.explore_many(specs)
        assert all(not r for r in seq_results)
        with make_parallel(fig1, default_k=2) as ex:
            results = ex.explore_many(specs)
            assert [canonical(r) for r in results] == [
                canonical(r) for r in seq_results
            ]
            # falsy results must be cached, not recomputed (MISSING sentinel)
            _, hits = ex.serve_batch(specs)
            assert hits == [True, True, True]
            assert ex.stats().queries_served == 2

    def test_results_merge_into_shared_cache(self, fig1):
        with make_parallel(fig1, default_k=2) as ex:
            ex.explore_many([("D", 2), ("E", 2)])
            # singles served from the entries the workers produced
            before = ex.stats().queries_served
            ex.explore("D", k=2)
            assert ex.stats().queries_served == before
            assert ex.is_cached(("D", 2))

    def test_small_batch_stays_inline(self, synthetic):
        with ParallelExplorer(synthetic, processes=WORKERS) as ex:
            ex.explore_many([(q, 6) for q in _probe_vertices(synthetic, 6, 2)])
            assert not ex.pool.running  # below min_batch: never shipped

    def test_tiny_graph_stays_inline(self, fig1):
        with ParallelExplorer(fig1, processes=WORKERS, min_batch=2) as ex:
            ex.explore_many([("D", 2), ("E", 2), ("A", 2), ("G", 2)])
            assert not ex.pool.running

    def test_single_process_never_pools(self, fig1):
        with ParallelExplorer(fig1, processes=1, tiny_graph_vertices=0) as ex:
            ex.explore_many([("D", 2), ("E", 2), ("A", 2), ("G", 2)])
            assert not ex.pool.running

    def test_batch_validation_before_any_execution(self, fig1):
        with make_parallel(fig1, default_k=2) as ex:
            with pytest.raises(InvalidInputError):
                ex.explore_many([("D", 2), ("missing-vertex", 2)])
            assert ex.stats().queries_served == 0


# ----------------------------------------------------------------------
# pool lifecycle & mutation safety
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_mutation_restarts_fleet_and_results_track(self, fig1):
        with make_parallel(fig1, default_k=2) as ex:
            specs = [("D", 2), ("E", 2), ("A", 2)]
            before = [canonical(r) for r in ex.explore_many(specs)]
            assert ex.pool_stats()["restarts"] == 1
            receipt = ex.apply_updates([("remove_edge", "D", "E")])
            assert receipt.applied == 1
            after = [canonical(r) for r in ex.explore_many(specs)]
            assert ex.pool_stats()["restarts"] == 2
            assert ex.pool.shipped_version == fig1.version
            expected = [
                canonical(pcs(fig1, q, k, method="adv-P", index=fig1.index()))
                for q, k in specs
            ]
            assert after == expected
            assert before != after  # the edit actually changed communities
            ex.apply_updates([("add_edge", "D", "E")])  # restore for siblings

    def test_close_then_reuse_restarts_lazily(self, fig1):
        with make_parallel(fig1, default_k=2) as ex:
            specs = [("D", 2), ("E", 2), ("A", 2)]
            ex.explore_many(specs)
            ex.close()
            assert not ex.pool.running
            ex.clear_cache()
            ex.explore_many(specs)  # transparently restarts
            assert ex.pool.running
        assert not ex.pool.running  # context exit closed it again

    def test_worker_pool_direct(self, fig1):
        pool = WorkerPool(fig1, processes=2)
        try:
            v = pool.ensure()
            assert v == fig1.version and pool.running
            keys = [("D", 2, "basic", "k-core"), ("E", 2, "basic", "k-core")]
            merged, ran_at = pool.run(keys)
            assert set(merged) == set(keys)
            assert ran_at == fig1.version
            assert pool.ensure() == v  # idempotent, no restart
            assert pool.restarts == 1
        finally:
            pool.close()

    def test_pool_rejects_bad_worker_count(self, fig1):
        with pytest.raises(InvalidInputError):
            WorkerPool(fig1, processes=0)
        with pytest.raises(InvalidInputError):
            ParallelExplorer(fig1, processes=0)
        with pytest.raises(InvalidInputError):
            ParallelExplorer(fig1, min_batch=1)

    def test_decide_batch_mode_table(self):
        assert decide_batch_mode(10, None)[0] == "inline"
        assert decide_batch_mode(10, 1)[0] == "inline"
        assert decide_batch_mode(3, 4)[0] == "inline"
        assert decide_batch_mode(10, 4, tiny_graph=True)[0] == "inline"
        assert decide_batch_mode(4, 4)[0] == "process"
        assert decide_batch_mode(2, 2, min_batch=2)[0] == "process"


# ----------------------------------------------------------------------
# parallel index construction
# ----------------------------------------------------------------------
class TestParallelIndexBuild:
    def test_parallel_build_equals_sequential(self, synthetic):
        from repro.index.cptree import CPTree

        parallel = build_cptree_parallel(synthetic, processes=2)
        sequential = CPTree(
            synthetic.graph, synthetic.all_labels(), synthetic.taxonomy, validate=False
        )
        assert set(parallel._nodes) == set(sequential._nodes)
        assert parallel._head_map == sequential._head_map
        for label in parallel.labels():
            assert parallel.vertices_with_label(label) == (
                sequential.vertices_with_label(label)
            )
        for q in _probe_vertices(synthetic, 6):
            for label in synthetic.labels(q):
                for k in (2, 6):
                    assert parallel.get(k, q, label) == sequential.get(k, q, label)

    def test_shard_labels_partition_and_balance(self, synthetic):
        weights = label_weights(synthetic.all_labels())
        shards = shard_labels(weights, 4)
        flat = [x for shard in shards for x in shard]
        assert sorted(flat) == sorted(weights)  # exact partition
        loads = sorted(sum(weights[x] for x in shard) for shard in shards)
        # LPT bound: no shard exceeds avg + heaviest label
        assert loads[-1] <= sum(weights.values()) / len(shards) + max(weights.values())

    def test_merge_rejects_overlapping_shards(self, fig1):
        weights = label_weights(fig1.all_labels())
        labels = sorted(weights)
        part = build_shard_cltrees(fig1, labels[:2])
        with pytest.raises(InvalidInputError):
            merge_shard_builds(fig1, [part, part])

    def test_from_parts_rejects_mismatched_labels(self, fig1):
        from repro.index.cptree import CPTree

        weights = label_weights(fig1.all_labels())
        labels = sorted(weights)
        incomplete = build_shard_cltrees(fig1, labels[:-1])
        with pytest.raises(InvalidInputError):
            CPTree.from_parts(fig1.all_labels(), fig1.taxonomy, incomplete)

    def test_warm_installs_index_and_serves(self, synthetic):
        pg = load_dataset("acmdl", scale=0.005, seed=23)
        with ParallelExplorer(pg, processes=2) as ex:
            assert not pg.has_index()
            seconds = ex.warm()
            assert pg.has_index() and seconds >= 0
            assert ex.stats().index_builds == 1
            q = _probe_vertices(pg, 6, 1)[0]
            expected = canonical(pcs(pg, q, 6, method="adv-P", index=pg.index()))
            assert canonical(ex.explore(q, k=6)) == expected
            assert ex.warm() < 1.0  # idempotent fast path


# ----------------------------------------------------------------------
# service facade
# ----------------------------------------------------------------------
class TestServiceParallel:
    def test_parallel_session_matches_inline_session(self, synthetic):
        k = 6
        queries = [
            Query(vertex=q, k=k, method="adv-P")
            for q in _probe_vertices(synthetic, k, 4)
        ]
        inline = CommunityService(synthetic)
        with CommunityService(
            synthetic, parallel=WORKERS
        ) as parallel_service:
            # force the process path even at this fixture's size
            parallel_service.explorer.tiny_graph_vertices = 0
            parallel_service.explorer.min_batch = 2
            a = [r.to_dict() for r in inline.batch(queries)]
            b = [r.to_dict() for r in parallel_service.batch(queries)]
        for left, right in zip(a, b):
            left.pop("elapsed_ms"), right.pop("elapsed_ms")
            assert left == right

    def test_plan_batch_reports_fleet(self, synthetic, fig1):
        with CommunityService(synthetic, parallel=WORKERS) as service:
            assert service.parallel_workers == WORKERS
            assert service.plan_batch(50).parallel
            assert not service.plan_batch(2).parallel
        inline = CommunityService(synthetic)
        assert inline.parallel_workers is None
        assert not inline.plan_batch(50).parallel
        tiny = CommunityService(fig1, parallel=WORKERS)
        assert not tiny.plan_batch(50).parallel  # tiny graph: inline
        tiny.close()

    def test_parallel_one_is_plain_engine(self, fig1):
        service = CommunityService(fig1, parallel=1)
        assert not isinstance(service.explorer, ParallelExplorer)
        service.close()  # no-op on plain engines

    def test_parallel_with_adopted_explorer_rejected(self, fig1):
        engine = CommunityExplorer(fig1)
        with pytest.raises(InvalidInputError):
            CommunityService(engine, parallel=2)
        # parallel=1 means in-process, which any explorer satisfies
        assert CommunityService(engine, parallel=1).explorer is engine
        # adopting a matching ParallelExplorer is fine
        par = make_parallel(fig1)
        assert CommunityService(par, parallel=WORKERS).explorer is par
        with pytest.raises(InvalidInputError):
            CommunityService(par, parallel=WORKERS + 1)
        par.close()

    def test_plan_batch_respects_session_overrides(self, fig1):
        # a session whose explorer overrides the tiny-graph floor must
        # *report* the same mode it will *execute* (they share one rule)
        par = make_parallel(fig1)  # tiny_graph_vertices=0, min_batch=2
        service = CommunityService(par)
        assert service.plan_batch(2).parallel
        assert not service.plan_batch(1).parallel
        par.close()

    def test_parallel_validation(self, fig1):
        with pytest.raises(InvalidInputError):
            CommunityService(fig1, parallel=0)

    def test_batch_plan_round_trip(self):
        from repro.api import BatchPlan

        plan = BatchPlan(mode="process", reason="test", workers=4)
        assert BatchPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(InvalidInputError):
            BatchPlan.from_dict({"mode": "process", "bogus": 1})
        with pytest.raises(InvalidInputError):
            BatchPlan.from_dict({"reason": "no mode"})


# ----------------------------------------------------------------------
# deterministic seeding (parallel workers must regenerate identically)
# ----------------------------------------------------------------------
class TestDeterministicSeeding:
    def test_omitted_seeds_are_deterministic(self):
        from repro.datasets.synthetic import simple_profiled_graph
        from repro.graph.generators import (
            gnp_graph,
            planted_community_graph,
            preferential_attachment_graph,
        )
        from repro.ptree.taxonomy import Taxonomy

        def edges(g):
            return sorted(tuple(sorted(e, key=repr)) for e in g.edges())

        assert edges(gnp_graph(40, 0.2)) == edges(gnp_graph(40, 0.2))
        assert edges(preferential_attachment_graph(30, 2)) == (
            edges(preferential_attachment_graph(30, 2))
        )
        g1, c1 = planted_community_graph(40, 3, 8)
        g2, c2 = planted_community_graph(40, 3, 8)
        assert edges(g1) == edges(g2) and c1 == c2
        tax = Taxonomy()
        for i in range(1, 8):
            tax.add(f"L{i}", parent=(i - 1) // 2)
        pa, pb = (simple_profiled_graph(tax, 20) for _ in range(2))
        assert edges(pa.graph) == edges(pb.graph)
        assert dict(pa.all_labels()) == dict(pb.all_labels())

    def test_explicit_none_still_means_entropy(self):
        from repro.graph.generators import gnp_graph

        def edges(g):
            return sorted(tuple(sorted(e, key=repr)) for e in g.edges())

        # Two OS-entropy draws of ~350 coin flips colliding is ~impossible;
        # a collision here means seed=None silently became deterministic.
        a = edges(gnp_graph(60, 0.2, seed=None))
        b = edges(gnp_graph(60, 0.2, seed=None))
        assert a != b

    def test_dataset_regenerates_identically_across_processes(self):
        """What worker determinism actually requires: same (name, scale,
        seed) → byte-identical dataset in a fresh interpreter."""
        import hashlib
        import os
        import subprocess
        import sys

        snippet = (
            "from repro.datasets import load_dataset\n"
            "import hashlib\n"
            "pg = load_dataset('acmdl', scale=0.005, seed=11)\n"
            "edges = sorted(tuple(sorted(e, key=repr)) for e in pg.graph.edges())\n"
            "labels = sorted((repr(v), tuple(sorted(s))) "
            "for v, s in pg.all_labels().items())\n"
            "print(hashlib.sha256(repr((edges, labels)).encode()).hexdigest())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        pg = load_dataset("acmdl", scale=0.005, seed=11)
        edges = sorted(tuple(sorted(e, key=repr)) for e in pg.graph.edges())
        labels = sorted(
            (repr(v), tuple(sorted(s))) for v, s in pg.all_labels().items()
        )
        here = hashlib.sha256(repr((edges, labels)).encode()).hexdigest()
        assert child.stdout.strip() == here


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliParallel:
    def test_batch_parallel_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main

        queries = tmp_path / "queries.txt"
        queries.write_text("D\nE\nA\nG\n")
        rc = main(
            ["batch", "--dataset", "fig1", "--queries", str(queries),
             "--k", "2", "--parallel", "2"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        # fig1 is tiny, so the planner reports inline — but the session
        # construction, plan surfacing and close() all exercised the
        # parallel path end to end.
        assert payload["batch_plan"]["mode"] == "inline"
        assert "vertices" in payload["batch_plan"]["reason"]
        assert payload["num_queries"] == 4

        rc = main(
            ["batch", "--dataset", "fig1", "--queries", str(queries), "--k", "2"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batch_plan"]["mode"] == "inline"
        assert "no process pool" in payload["batch_plan"]["reason"]


# ----------------------------------------------------------------------
# mutations racing warm queries (the PR-2 stale-serving regression gate)
# ----------------------------------------------------------------------
class TestMutationRace:
    def test_graph_version_consistent_with_communities(self):
        k = 2
        pg = load_dataset("acmdl", scale=0.005, seed=41)
        probes = _probe_vertices(pg, 6, 3)
        # an edit stream that never touches the probe vertices' existence
        others = [v for v in sorted(pg.graph.vertex_set()) if v not in probes]
        edits = []
        for i in range(12):
            u, v = others[2 * i], others[2 * i + 1]
            edits.append(
                ("remove_edge", u, v) if pg.graph.has_edge(u, v) else ("add_edge", u, v)
            )

        # ground truth per version, replayed on an identical shadow graph
        shadow = load_dataset("acmdl", scale=0.005, seed=41)
        expected = {}  # version -> {probe: canonical result}
        expected[shadow.version] = {
            q: canonical(pcs(shadow, q, k, method="basic")) for q in probes
        }
        from repro.engine.updates import GraphUpdate, apply_update

        for edit in edits:
            apply_update(shadow, GraphUpdate.coerce(edit))
            expected[shadow.version] = {
                q: canonical(pcs(shadow, q, k, method="basic")) for q in probes
            }

        service = CommunityService(pg)
        service.warm()
        for q in probes:  # warm the cache so invalidation is exercised
            service.query(Query(vertex=q, k=k, method="basic"))

        errors = []
        done = threading.Event()

        def hammer(q):
            request = Query(vertex=q, k=k, method="basic")
            while not done.is_set():
                response = service.query(request)
                version = response.graph_version
                if version not in expected:
                    errors.append(f"{q}: unknown graph_version {version}")
                    return
                if canonical(response.result) != expected[version][q]:
                    errors.append(
                        f"{q}: response at graph_version {version} does not "
                        "match the graph at that version (stale serving)"
                    )
                    return

        threads = [threading.Thread(target=hammer, args=(q,)) for q in probes]
        for t in threads:
            t.start()
        try:
            for edit in edits:
                service.apply_updates([edit])
        finally:
            done.set()
            for t in threads:
                t.join()
        assert not errors, errors[0]
        # final answers match the fully edited shadow graph
        final = {
            q: canonical(service.query(Query(vertex=q, k=k, method="basic")).result)
            for q in probes
        }
        assert final == expected[shadow.version]
        assert pg.version == shadow.version

    def test_version_stable_single_query_under_edit_burst(self):
        """explore() never tags a result with a version it doesn't reflect."""
        pg = load_dataset("acmdl", scale=0.005, seed=43)
        ex = CommunityExplorer(pg, default_k=2)
        q = _probe_vertices(pg, 6, 1)[0]
        others = [v for v in sorted(pg.graph.vertex_set()) if v != q]
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                u, v = others[i % len(others)], others[(i + 7) % len(others)]
                if u != v:
                    if pg.graph.has_edge(u, v):
                        ex.apply_updates([("remove_edge", u, v)])
                    else:
                        ex.apply_updates([("add_edge", u, v)])
                i += 1

        mutator = threading.Thread(target=churn)
        mutator.start()
        try:
            for _ in range(25):
                ex.clear_cache()
                response = ex.explore_query(Query(vertex=q, k=2, method="basic"))
                # recompute on the *current* graph only if the version still
                # matches; a mismatch means the graph moved on — skip. The
                # recompute itself races the mutator, so it gets the same
                # torn-read treatment the engine applies internally.
                version = response.graph_version
                if pg.version != version:
                    continue
                try:
                    again = pcs(pg, q, 2, method="basic")
                except Exception:
                    if pg.version == version:
                        raise
                    continue
                if pg.version == version:
                    assert canonical(again) == canonical(response.result)
        finally:
            stop.set()
            mutator.join()
