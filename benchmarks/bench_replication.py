"""Replicated read throughput — 1 writer + 3 replicas vs a single gateway.

The replication PR's acceptance benchmark. The same read-only workload
(distinct vertices, each queried exactly once, so per-backend result
caches never answer and every request is real engine compute) is driven
by concurrent clients against two real deployments:

* **single** — one standalone ``repro serve`` subprocess, the pre-tier
  topology: every query competes for that process's GIL;
* **replicated** — a :class:`~repro.replication.cluster.LocalCluster`
  (one writer, :data:`REPLICAS` read replicas, one asyncio router, each
  its own process), with reads fanned across the replicas.

Asserted:

* **correctness** — per-vertex envelopes are identical between the two
  deployments (modulo timings), always. Replicas answer from a shipped
  snapshot + streamed WAL, so equality here is the end-to-end proof the
  replication path preserves answers byte for byte;
* **throughput** — the replicated tier serves reads at least
  :data:`MIN_SPEEDUP`× the single gateway. The win *is* process
  parallelism, so — like ``bench_parallel_throughput`` — the gate only
  applies on hosts with at least :data:`MIN_CORES_FOR_SPEEDUP` usable
  cores; below that it is loudly skipped while correctness still gates.

Reported: queries/sec and wall seconds per deployment, the speedup, and
the router's per-replica request spread.

Runs two ways, like the other acceptance benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py --smoke
    PYTHONPATH=src python benchmarks/bench_replication.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bench import Table, make_workload, save_tables, smoke_mode
from repro.parallel import recommended_workers
from repro.replication import ClusterProcess, LocalCluster
from repro.server import ServerClient

#: Acceptance floor: replicated read throughput over the single gateway.
MIN_SPEEDUP = 1.5

#: Read replicas behind the router (the acceptance criterion's shape).
REPLICAS = 3

#: Usable CPUs below which the speedup gate is skipped (correctness still
#: asserted): the replicas must actually run in parallel to win.
MIN_CORES_FOR_SPEEDUP = 4

#: Concurrent client threads driving each deployment.
CLIENTS = 8

METHOD = "basic"
K = 6

#: ``load_dataset``'s default generation seed, pinned explicitly so the
#: driver's workload graph and every subprocess generate identically.
DATASET_SEED = 20190116

ROOT = Path(__file__).resolve().parents[1]


def distinct_queries() -> int:
    return 24 if smoke_mode() else 48


def _single_gateway(dataset: str, scale: float, seed: int) -> ClusterProcess:
    """One standalone serving subprocess — the baseline topology."""
    argv = [
        sys.executable, "-m", "repro", "serve", "--role", "standalone",
        "--host", "127.0.0.1", "--port", "0", "--no-coalesce",
        "--dataset", dataset, "--scale", str(scale), "--seed", str(seed),
    ]
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src if not env.get("PYTHONPATH")
        else os.pathsep.join([src, env["PYTHONPATH"]])
    )
    return ClusterProcess("single", argv, env=env)


def _drive(url: str, vertices, clients: int):
    """Drain the workload through ``clients`` threads; returns
    ``(wall_seconds, envelopes-by-vertex)``."""
    host, port = url.removeprefix("http://").rsplit(":", 1)
    pending = list(vertices)
    envelopes = {}
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker() -> None:
        try:
            with ServerClient(host, int(port), retries=2) as client:
                barrier.wait()
                while True:
                    with lock:
                        if not pending:
                            return
                        vertex = pending.pop()
                    payload = client.query_raw(
                        {"vertex": vertex, "k": K, "method": METHOD}
                    )
                    with lock:
                        envelopes[vertex] = payload
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for t in threads:
        t.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker failed during connect; its error is in `errors`
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    if errors:
        root = [e for e in errors if not isinstance(e, threading.BrokenBarrierError)]
        raise (root or errors)[0]
    return wall, envelopes


def _strip_timings(envelope: dict) -> dict:
    """Drop fields legally differing between deployments: timings, and
    work/cache provenance (``num_verifications`` counts index traversal
    steps, which depend on whether the index was built cold or restored
    from a shipped snapshot — the snapshot contract is structural
    equality, not traversal order; see ``bench_snapshot_boot``). Every
    answer field — communities, cohesion, matched, plan,
    ``graph_version`` — stays compared."""
    cleaned = dict(envelope)
    for key in ("elapsed_ms", "num_verifications", "cache_hit"):
        cleaned.pop(key, None)
    return cleaned


def measure(dataset: str, scale: float, seed: int, vertices) -> dict:
    """Drive both deployments over the same workload; compare and time."""
    single = _single_gateway(dataset, scale, seed)
    try:
        single_url = single.wait_url(120.0)
        single_wall, single_envelopes = _drive(single_url, vertices, CLIENTS)
    finally:
        single.terminate()

    with LocalCluster(
        dataset=dataset, scale=scale, seed=seed, replicas=REPLICAS
    ) as cluster:
        with cluster.client() as probe:
            probe.healthz()  # router is answering before the clock starts
        routed_wall, routed_envelopes = _drive(
            cluster.router_url, vertices, CLIENTS
        )
        with cluster.client() as probe:
            spread = {
                member["url"]: member["requests"]
                for member in probe.stats()["replicas"]
            }

    mismatched = [
        v for v in vertices
        if _strip_timings(single_envelopes[v]) != _strip_timings(routed_envelopes[v])
    ]
    total = len(vertices)
    single_qps = total / single_wall if single_wall else 0.0
    routed_qps = total / routed_wall if routed_wall else 0.0
    cores = recommended_workers()
    return {
        "dataset": dataset,
        "queries": total,
        "clients": CLIENTS,
        "replicas": REPLICAS,
        "method": METHOD,
        "cores": cores,
        "speedup_gated": cores >= MIN_CORES_FOR_SPEEDUP,
        "single": {"wall_seconds": single_wall, "throughput_qps": single_qps},
        "replicated": {"wall_seconds": routed_wall, "throughput_qps": routed_qps},
        "speedup": routed_qps / single_qps if single_qps else 0.0,
        "replica_request_spread": spread,
        "all_equal": not mismatched,
        "mismatched_vertices": [repr(v) for v in mismatched],
    }


def _render(report: dict) -> Table:
    table = Table(
        "Replicated serving — router over "
        f"{report['replicas']} replicas vs a single gateway "
        f"({report['clients']} concurrent clients)",
        ["dataset", "deployment", "queries", "wall s", "qps"],
    )
    for label in ("single", "replicated"):
        row = report[label]
        table.add_row(
            report["dataset"],
            label,
            report["queries"],
            round(row["wall_seconds"], 2),
            round(row["throughput_qps"], 1),
        )
    return table


def _check(report: dict) -> list:
    """Correctness always; speedup only where cores make it physical."""
    failures = []
    if not report["all_equal"]:
        failures.append(
            f"{report['dataset']}: replicated answers differ from the single "
            f"gateway for {report['mismatched_vertices']}"
        )
    if report["speedup_gated"] and report["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"{report['dataset']}: replicated tier only {report['speedup']:.2f}x "
            f"the single gateway (need >= {MIN_SPEEDUP}x on {report['cores']} "
            f"cores; spread {report['replica_request_spread']})"
        )
    return failures


@pytest.mark.smoke
def test_replicated_read_throughput():
    """Replicated reads: identical answers always; >=1.5x where cores allow."""
    from conftest import bench_scale

    from repro.datasets import load_dataset

    scale = bench_scale("acmdl")
    pg = load_dataset("acmdl", scale=scale)
    vertices = make_workload(
        pg, "acmdl", num_queries=distinct_queries(), k=K, seed=11
    ).queries
    report = measure("acmdl", scale, DATASET_SEED, list(vertices))
    table = _render(report)
    table.show()
    save_tables(
        "replication_throughput" + ("_smoke" if smoke_mode() else ""),
        [table],
        extra={"measurements": {"acmdl": report}},
    )
    failures = _check(report)
    assert not failures, "; ".join(failures)
    if not report["speedup_gated"]:
        pytest.skip(
            f"speedup gate skipped: host has {report['cores']} usable core(s) "
            f"< {MIN_CORES_FOR_SPEEDUP}; correctness asserted"
        )


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--dataset", default="acmdl")
    parser.add_argument("--queries", type=int, default=None,
                        help="distinct vertices (default 48; smoke 16)")
    parser.add_argument("--out", default=None,
                        help="results name (default replication_throughput[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"

    from conftest import BENCH_SCALES, bench_scale

    from repro.datasets import load_dataset

    if args.dataset not in BENCH_SCALES:
        parser.error(
            f"unknown dataset {args.dataset!r}; choose from {sorted(BENCH_SCALES)}"
        )
    scale = bench_scale(args.dataset)
    pg = load_dataset(args.dataset, scale=scale)
    vertices = make_workload(
        pg, args.dataset, num_queries=args.queries or distinct_queries(),
        k=K, seed=11,
    ).queries
    report = measure(args.dataset, scale, DATASET_SEED, list(vertices))
    table = _render(report)
    table.show()
    result_name = args.out or (
        "replication_throughput_smoke" if smoke_mode() else "replication_throughput"
    )
    path = save_tables(result_name, [table], extra={"measurements": {args.dataset: report}})
    print(f"\nwrote {path}")

    failures = _check(report)
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    note = ""
    if not report["speedup_gated"]:
        note = (f" — NOTE: speedup gate skipped ({report['cores']} usable "
                f"core(s) < {MIN_CORES_FOR_SPEEDUP})")
    print(f"OK: replicated {report['speedup']:.2f}x the single gateway{note}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
