"""Table 3 — locations of maximal feasible subtrees in the search space.

The paper buckets the sizes of maximal feasible subtrees into five levels of
the subtree search space (level 5 = the query's full P-tree) and observes
that substantial mass sits in the middle — the observation motivating the
border-walking advanced methods. We reproduce the measurement: for every
query, every maximal feasible subtree contributes to the bucket
``ceil(5·|T| / |T(q)|)``.

Expected shape: levels 3–5 carry most of the mass (themes are large shared
subtrees; deep private labels keep T(q) itself infeasible for many queries).
"""

import math

from repro.bench import Table, save_tables
from repro.core import pcs

from conftest import DEFAULT_K


def _bucket(subtree_size: int, base_size: int) -> int:
    if base_size <= 0:
        return 1
    return min(5, max(1, math.ceil(5 * subtree_size / base_size)))


def test_table3_maximal_subtree_locations(benchmark, datasets, workloads):
    table = Table(
        "Table 3 — locations of maximal feasible subtrees (share per level)",
        ["level", "acmdl", "flickr", "pubmed", "dblp"],
    )
    histograms = {}
    for name, pg in datasets.items():
        counts = [0] * 5
        for q in workloads[name]:
            base_size = len(pg.labels(q))
            for community in pcs(pg, q, DEFAULT_K):
                counts[_bucket(len(community.subtree), base_size) - 1] += 1
        total = sum(counts) or 1
        histograms[name] = [c / total for c in counts]
    for level in range(5):
        table.add_row(
            f"Level {level + 1}",
            *(f"{histograms[n][level]:.0%}" for n in ("acmdl", "flickr", "pubmed", "dblp")),
        )
    table.show()
    save_tables("table3_locations", [table], extra={"histograms": histograms})

    # The paper's motivating observation: the mass sits above the bottom of
    # the search space — mostly mid-to-upper levels (its Table 3 reports
    # 3-11% at level 1 and the rest spread over levels 2-5).
    for name, hist in histograms.items():
        assert sum(hist[1:]) >= 0.5, (name, hist)
        assert sum(hist[2:]) >= 0.3, (name, hist)

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]
    benchmark(lambda: pcs(pg, q, DEFAULT_K))
