"""Update throughput — incremental index maintenance vs rebuild-per-edit.

The mutation PR's acceptance benchmark: for each dataset, replay one
reproducible edit stream (edge toggles + profile replacements) two ways

* **rebuild** — the no-maintenance strawman: every edit is followed by a
  full ``pg.index(rebuild=True)``, the only way a pre-mutation-API
  pipeline could avoid serving stale communities;
* **incremental** — the engine path: each edit goes through
  ``CommunityExplorer.apply_updates``, which journals the damage and
  repairs only the per-label CL-trees that edit touched (edits are applied
  one at a time — the journal's worst case; batching only improves it).

Asserts incremental maintenance is ≥ 5× faster per edit than rebuilding,
that the maintained index ends structurally identical to a fresh build,
and records edits/sec plus invalidation counts under
``results/update_throughput*.json``.

Runs two ways, exactly like the engine-throughput benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_update_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_update_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.bench import (
    Table,
    make_edit_stream,
    measure_update_throughput,
    save_tables,
    smoke_mode,
)

#: Acceptance floor: incremental repair vs full rebuild after each edit.
MIN_SPEEDUP = 5.0

#: Edits replayed through the incremental path (the rebuild strawman times
#: only REBUILD_CAP of them — rebuilds dominate, a few suffice).
NUM_EDITS = 24
SMOKE_NUM_EDITS = 8
REBUILD_CAP = 3

#: Fraction of profile-replacement edits in the stream.
PROFILE_FRACTION = 0.2


def num_edits() -> int:
    return SMOKE_NUM_EDITS if smoke_mode() else NUM_EDITS


def measure_updates(make_pg, dataset: str, seed: int = 7) -> dict:
    """Incremental vs rebuild stats for one dataset (see module docstring)."""
    stream = make_edit_stream(
        make_pg(), num_edits(), seed=seed, profile_fraction=PROFILE_FRACTION
    )
    report = measure_update_throughput(
        make_pg, dataset, stream, rebuild_cap=REBUILD_CAP
    )
    return report.to_dict()


def _render(payload: dict) -> Table:
    table = Table(
        "Update throughput — rebuild-per-edit vs incremental maintenance",
        ["dataset", "edits", "rebuild ms/e", "incr ms/e", "speedup", "edits/sec", "ok"],
    )
    for row in payload.values():
        table.add_row(
            row["dataset"],
            row["num_edits"],
            round(row["rebuild_ms_per_edit"], 2),
            round(row["incremental_ms_per_edit"], 3),
            round(row["speedup"], 1),
            round(row["edits_per_second"], 1),
            "yes" if row["consistent"] else "NO",
        )
    return table


@pytest.mark.smoke
def test_update_throughput():
    """Incremental maintenance must beat rebuild-per-edit by ≥ 5×."""
    # Fresh per-mode instances are required (the stream mutates them), so
    # this test loads its own datasets instead of the shared session
    # fixture, whose graphs other benchmarks keep querying.
    from conftest import BENCH_SCALES, bench_scale

    from repro.datasets import load_dataset

    payload = {}
    for name in ("acmdl", "flickr"):
        assert name in BENCH_SCALES
        payload[name] = measure_updates(
            lambda name=name: load_dataset(name, scale=bench_scale(name)), name
        )
    table = _render(payload)
    table.show()
    save_tables("update_throughput", [table], extra={"measurements": payload})

    for name, row in payload.items():
        assert row["consistent"], f"{name}: maintained index diverged from fresh build"
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{name}: incremental maintenance only {row['speedup']:.1f}x faster than "
            f"rebuild-per-edit (need >= {MIN_SPEEDUP}x)"
        )


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset names (default: acmdl flickr)")
    parser.add_argument("--num-edits", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default=None,
                        help="results name (default update_throughput[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    from conftest import BENCH_SCALES, bench_scale

    from repro.datasets import load_dataset

    names = args.datasets or ["acmdl", "flickr"]
    unknown = [n for n in names if n not in BENCH_SCALES]
    if unknown:
        parser.error(f"unknown datasets {unknown}; choose from {sorted(BENCH_SCALES)}")

    payload = {}
    for name in names:
        def make_pg(name=name):
            return load_dataset(name, scale=bench_scale(name))

        stream = make_edit_stream(
            make_pg(),
            args.num_edits or num_edits(),
            seed=args.seed,
            profile_fraction=PROFILE_FRACTION,
        )
        payload[name] = measure_update_throughput(
            make_pg, name, stream, rebuild_cap=REBUILD_CAP
        ).to_dict()
    table = _render(payload)
    table.show()
    result_name = args.out or (
        "update_throughput_smoke" if smoke_mode() else "update_throughput"
    )
    path = save_tables(result_name, [table], extra={"measurements": payload})
    print(f"\nwrote {path}")

    broken = [n for n, row in payload.items() if not row["consistent"]]
    slow = [n for n, row in payload.items() if row["speedup"] < MIN_SPEEDUP]
    if broken:
        print(f"FAIL: maintained index diverged on {broken}", file=sys.stderr)
        return 1
    if slow:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x on {slow}", file=sys.stderr)
        return 1
    print(f"OK: incremental maintenance >= {MIN_SPEEDUP}x faster on all datasets")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
