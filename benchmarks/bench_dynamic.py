"""Extension benchmark — dynamic maintenance versus rebuilding.

Not a paper figure: quantifies the dynamic layer (DESIGN.md S-inventory,
docs/architecture.md). Two comparisons on the ACMDL analogue:

* incremental core maintenance per edge edit versus full core
  decomposition per edit;
* lazily repaired CP-tree (only dirty labels rebuilt) versus full index
  rebuild, over a batch of edits.

Expected shape: per-edit incremental cores win by orders of magnitude;
lazy repair wins whenever the edit batch touches a small fraction of
labels.
"""

import random
import time

from repro.bench import Table, save_tables
from repro.core import pcs
from repro.datasets import load_dataset
from repro.dynamic import DynamicCoreIndex, DynamicProfiledGraph
from repro.graph.core import core_numbers

from conftest import DEFAULT_K, bench_scale

EDITS = 40


def test_dynamic_maintenance_vs_rebuild(benchmark):
    pg = load_dataset("acmdl", scale=bench_scale("acmdl"), seed=3)
    rng = random.Random(9)
    vertices = sorted(pg.vertices())
    edits = []
    probe = pg.graph.copy()
    for _ in range(EDITS):
        u, v = rng.sample(vertices, 2)
        if probe.has_edge(u, v):
            edits.append(("remove", u, v))
            probe.remove_edge(u, v)
        else:
            edits.append(("insert", u, v))
            probe.add_edge(u, v)

    # --- incremental cores vs full decomposition per edit
    graph = pg.graph.copy()
    index = DynamicCoreIndex(graph)
    start = time.perf_counter()
    for op, u, v in edits:
        if op == "insert":
            index.insert(u, v)
        else:
            index.remove(u, v)
    incremental_s = time.perf_counter() - start
    assert index.verify()

    graph2 = pg.graph.copy()
    start = time.perf_counter()
    for op, u, v in edits:
        if op == "insert":
            graph2.add_edge(u, v)
        else:
            graph2.remove_edge(u, v)
        core_numbers(graph2)
    recompute_s = time.perf_counter() - start

    # --- lazy CP-tree repair vs full rebuild over the batch
    dyn = DynamicProfiledGraph(
        load_dataset("acmdl", scale=bench_scale("acmdl"), seed=3)
    )
    dyn.index()
    for op, u, v in edits:
        if op == "insert":
            dyn.insert_edge(u, v)
        else:
            dyn.remove_edge(u, v)
    dirty = dyn.dirty_label_count
    start = time.perf_counter()
    dyn.index()
    repair_s = time.perf_counter() - start
    start = time.perf_counter()
    dyn.pg.index(rebuild=True)
    rebuild_s = time.perf_counter() - start

    table = Table(
        f"Dynamic maintenance over {EDITS} edits (acmdl analogue)",
        ["strategy", "seconds", "notes"],
    )
    table.add_row("incremental cores", round(incremental_s, 4), "per-edit ±1 regions")
    table.add_row("recompute cores/edit", round(recompute_s, 4), "O(m) each")
    table.add_row("lazy CP-tree repair", round(repair_s, 4), f"{dirty} dirty labels")
    table.add_row("full CP-tree rebuild", round(rebuild_s, 4), "all labels")
    table.show()
    save_tables(
        "dynamic_maintenance",
        [table],
        extra={
            "incremental_s": incremental_s,
            "recompute_s": recompute_s,
            "repair_s": repair_s,
            "rebuild_s": rebuild_s,
            "dirty_labels": dirty,
        },
    )

    assert incremental_s < recompute_s
    # queries remain exact on the maintained structures
    q = next(iter(dyn.pg.vertices()))
    maintained = {c.vertices for c in dyn.query(q, DEFAULT_K)}
    fresh = {c.vertices for c in pcs(dyn.pg, q, DEFAULT_K, method="basic")}
    assert maintained == fresh

    edit_graph = pg.graph.copy()
    edit_index = DynamicCoreIndex(edit_graph)

    def one_edit():
        edit_index.insert("bench-a", "bench-b")
        edit_index.remove("bench-a", "bench-b")

    benchmark(one_edit)
