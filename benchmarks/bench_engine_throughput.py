"""Engine throughput — cold-index vs warm-index serving latency.

The engine PR's acceptance benchmark: for each bundled dataset, compare

* **cold** — the no-reuse strawman: every query rebuilds the CP-tree index
  from scratch (what repeated one-shot ``pcs()`` calls on fresh graphs do);
* **warm** — one :class:`~repro.engine.CommunityExplorer` serving the same
  workload as batches: the index is built once, results are LRU-cached and
  the workload is replayed ``REPEAT`` times (interactive re-querying).

Asserts warm-index batched serving is ≥ 5× faster per query than the cold
path, and records queries/sec plus cache hit rate under
``results/engine_throughput*.json``.

Runs two ways:

* under pytest (session fixtures, all bundled datasets)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_throughput.py --smoke

* as a plain script — no pytest *invocation* or fixtures, though the
  module still imports pytest for its marker (the CI benchmark-smoke job
  runs this form)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import pytest

from repro.bench import (
    Table,
    Workload,
    make_workload,
    measure_cold_warm,
    measure_facade_overhead,
    save_tables,
    smoke_mode,
)
from repro.core.profiled_graph import ProfiledGraph
from repro.engine import CommunityExplorer

#: Acceptance floor: warm-index batched serving vs per-query index rebuild.
MIN_SPEEDUP = 5.0

#: Facade acceptance (the PR's criterion): routing a workload through
#: CommunityService must stay within 5% of bare ``explore_many``. Per-query
#: times at bench scale are fractions of a millisecond, so single runs
#: jitter well past the real ~2% overhead; the run is retried and passes if
#: the *best* of ``FACADE_ATTEMPTS`` observations lands under the bound
#: (regressions that matter — an accidental deep copy, per-query index
#: probe, O(n) middleware — shift every observation, not just the noisy
#: ones).
MAX_FACADE_OVERHEAD = 0.05
FACADE_ATTEMPTS = 3

#: Queries timed on the cold path (index rebuild dominates; a few suffice).
COLD_QUERY_CAP = 3

#: Times the workload is replayed through the warm engine. Replays model
#: interactive re-querying; on datasets where one heavy query dwarfs the
#: index build (dblp at bench scale) the cache is what keeps the engine
#: fast, so the replay factor materially affects the measured speedup.
REPEAT = 4


def measure_engine(
    pg: ProfiledGraph,
    workload: Workload,
    method: str = "adv-P",
    workers: Optional[int] = None,
) -> dict:
    """Cold vs warm serving stats for one dataset (see module docstring).

    Thin wrapper over :func:`repro.bench.measure_cold_warm` — the same
    helper ``repro bench-engine`` uses, so the CLI and this acceptance
    benchmark can never report differently computed speedups.
    """
    report = measure_cold_warm(
        pg,
        workload,
        method=method,
        cold_query_cap=COLD_QUERY_CAP,
        repeat_factor=REPEAT,
        workers=workers,
    )
    return {
        "dataset": workload.dataset,
        "method": method,
        "k": workload.k,
        **report.to_dict(),
        "queries_per_second": report.throughput.queries_per_second,
        "cache_hit_rate": report.throughput.cache_hit_rate,
    }


def measure_facade(
    pg: ProfiledGraph, workload: Workload, method: str = "adv-P"
) -> dict:
    """Best-of-N service-vs-engine overhead for one workload.

    Routes the identical workload through :class:`repro.api.CommunityService`
    and bare :meth:`CommunityExplorer.explore_many`; reports the attempt
    with the lowest overhead plus all observations (see
    :data:`MAX_FACADE_OVERHEAD` for why best-of-N).
    """
    attempts = [
        measure_facade_overhead(pg, workload, method=method, repeat_factor=REPEAT)
        for _ in range(FACADE_ATTEMPTS)
    ]
    best = min(attempts, key=lambda m: m["overhead_fraction"])
    return {
        **best,
        "observed_overheads": [m["overhead_fraction"] for m in attempts],
        "passed": best["overhead_fraction"] <= MAX_FACADE_OVERHEAD,
    }


def _render(payload: dict) -> Table:
    table = Table(
        "Engine throughput — cold (rebuild/query) vs warm (index + cache reuse)",
        ["dataset", "cold ms/q", "warm ms/q", "speedup", "q/sec", "hit rate"],
    )
    for row in payload.values():
        table.add_row(
            row["dataset"],
            round(row["cold_ms_per_query"], 2),
            round(row["warm_ms_per_query"], 3),
            round(row["speedup"], 1),
            round(row["queries_per_second"], 1),
            f"{row['cache_hit_rate']:.0%}",
        )
    return table


@pytest.mark.smoke
def test_engine_throughput(benchmark, datasets, workloads):
    """Warm-index batched serving must beat cold rebuilds by ≥ 5×."""
    payload = {}
    for name, pg in datasets.items():
        payload[name] = measure_engine(pg, workloads[name])
    table = _render(payload)
    table.show()
    save_tables("engine_throughput", [table], extra={"measurements": payload})

    for name, row in payload.items():
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{name}: warm engine only {row['speedup']:.1f}x faster than "
            f"per-query index rebuild (need >= {MIN_SPEEDUP}x)"
        )

    explorer = CommunityExplorer(datasets["acmdl"])
    q = workloads["acmdl"].queries[0]
    explorer.warm()
    benchmark(lambda: explorer.explore(q, k=6))


@pytest.mark.smoke
def test_facade_overhead(datasets, workloads):
    """CommunityService must not slow serving beyond MAX_FACADE_OVERHEAD."""
    name = "acmdl"
    facade = measure_facade(datasets[name], workloads[name])
    save_tables(
        "facade_overhead", [_render_facade({name: facade})], extra={name: facade}
    )
    assert facade["passed"], (
        f"{name}: service {facade['service_ms_per_query']:.3f} ms/query vs "
        f"engine {facade['engine_ms_per_query']:.3f} ms/query — best observed "
        f"overhead {facade['overhead_fraction']:+.1%} exceeds "
        f"{MAX_FACADE_OVERHEAD:.0%} (all: "
        f"{[f'{o:+.1%}' for o in facade['observed_overheads']]})"
    )


def _render_facade(payload: dict) -> Table:
    table = Table(
        "Facade overhead — CommunityService vs bare CommunityExplorer",
        ["dataset", "engine ms/q", "service ms/q", "overhead", "ok"],
    )
    for name, row in payload.items():
        table.add_row(
            name,
            round(row["engine_ms_per_query"], 3),
            round(row["service_ms_per_query"], 3),
            f"{row['overhead_fraction']:+.1%}",
            "yes" if row["passed"] else "NO",
        )
    return table


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset names (default: acmdl flickr)")
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--method", default="adv-P")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="results name (default engine_throughput[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    # Late import so `--help` stays instant; the script's own directory is
    # on sys.path when executed directly, so the bench conftest resolves.
    from conftest import BENCH_SCALES, bench_queries, bench_scale

    from repro.datasets import load_dataset

    names = args.datasets or ["acmdl", "flickr"]
    unknown = [n for n in names if n not in BENCH_SCALES]
    if unknown:
        parser.error(f"unknown datasets {unknown}; choose from {sorted(BENCH_SCALES)}")
    num_queries = args.num_queries or bench_queries()

    payload = {}
    facade_payload = {}
    for name in names:
        pg = load_dataset(name, scale=bench_scale(name))
        workload = make_workload(pg, name, num_queries=num_queries, k=args.k, seed=7)
        payload[name] = measure_engine(
            pg, workload, method=args.method, workers=args.workers
        )
        if name == names[0]:
            # One workload is enough to catch facade regressions; the
            # overhead is dataset-independent (per-query fixed cost).
            facade_payload[name] = measure_facade(pg, workload, method=args.method)
    table = _render(payload)
    table.show()
    facade_table = _render_facade(facade_payload)
    facade_table.show()
    result_name = args.out or (
        "engine_throughput_smoke" if smoke_mode() else "engine_throughput"
    )
    path = save_tables(
        result_name,
        [table, facade_table],
        extra={"measurements": payload, "facade_overhead": facade_payload},
    )
    print(f"\nwrote {path}")

    failures = [n for n, row in payload.items() if row["speedup"] < MIN_SPEEDUP]
    if failures:
        print(f"FAIL: speedup below {MIN_SPEEDUP}x on {failures}", file=sys.stderr)
        return 1
    facade_failures = [n for n, row in facade_payload.items() if not row["passed"]]
    if facade_failures:
        print(
            f"FAIL: CommunityService facade overhead above "
            f"{MAX_FACADE_OVERHEAD:.0%} on {facade_failures}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: warm-index serving >= {MIN_SPEEDUP}x faster on all datasets; "
          f"service facade within {MAX_FACADE_OVERHEAD:.0%} of the bare engine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
