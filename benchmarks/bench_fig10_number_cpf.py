"""Fig. 10 — community numbers per query and CPF (Eq. 4).

* Fig. 10(a): PCS returns more communities per query than ACQ / Global /
  Local, because only PCS enumerates every maximal shared *subtree* (one
  community per semantic focus); the baselines return at most a handful.
* Fig. 10(b): CPF — the fraction of members whose P-trees cover the query's
  P-tree nodes — is highest for the profile-aware methods.
"""

from repro.baselines import acq_query, global_community_k, local_community
from repro.bench import Table, save_tables
from repro.core import pcs
from repro.metrics import average_community_count, community_ptree_frequency

from conftest import DEFAULT_K


def test_fig10_community_numbers_and_cpf(benchmark, datasets, workloads):
    number_table = Table(
        "Fig. 10(a) — average communities per query",
        ["dataset", "PCS", "ACQ", "Global", "Local"],
    )
    cpf_table = Table(
        "Fig. 10(b) — CPF per method (higher = better coverage of T(q))",
        ["dataset", "PCS", "ACQ", "Global", "Local"],
    )
    summary = {}
    for name, pg in datasets.items():
        counts = {m: [] for m in ("PCS", "ACQ", "Global", "Local")}
        cpf = {m: [] for m in ("PCS", "ACQ", "Global", "Local")}
        for q in workloads[name]:
            per_method = {
                "PCS": [c.vertices for c in pcs(pg, q, DEFAULT_K)],
                "ACQ": [c.vertices for c in acq_query(pg, q, DEFAULT_K)],
            }
            g = global_community_k(pg.graph, q, DEFAULT_K)
            per_method["Global"] = [g] if g else []
            l = local_community(pg.graph, q, DEFAULT_K)
            per_method["Local"] = [l] if l else []
            for method, communities in per_method.items():
                counts[method].append(communities)
                if communities:
                    cpf[method].append(
                        community_ptree_frequency(pg, q, communities)
                    )
        number_row = [name]
        cpf_row = [name]
        summary[name] = {}
        for method in ("PCS", "ACQ", "Global", "Local"):
            avg_count = average_community_count(counts[method])
            avg_cpf = sum(cpf[method]) / len(cpf[method]) if cpf[method] else 0.0
            summary[name][method] = {"count": avg_count, "cpf": avg_cpf}
            number_row.append(round(avg_count, 2))
            cpf_row.append(round(avg_cpf, 3))
        number_table.add_row(*number_row)
        cpf_table.add_row(*cpf_row)
        # Fig. 10(a)'s claim: PCS finds at least as many communities.
        assert summary[name]["PCS"]["count"] >= summary[name]["ACQ"]["count"] - 1e-9
        assert summary[name]["PCS"]["count"] >= summary[name]["Global"]["count"] - 1e-9
        # Fig. 10(b)'s claim: profile-aware beats topology-only on CPF.
        assert summary[name]["PCS"]["cpf"] >= summary[name]["Global"]["cpf"] - 1e-9
    number_table.show()
    cpf_table.show()
    save_tables("fig10_number_cpf", [number_table, cpf_table], extra={"summary": summary})

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]
    benchmark(lambda: community_ptree_frequency(pg, q, [c.vertices for c in pcs(pg, q, DEFAULT_K)]))
