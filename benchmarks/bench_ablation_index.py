"""Ablation — what the CL-tree/CP-tree index actually buys.

DESIGN.md calls out two design choices worth isolating:

1. the CL-tree's O(1)-ish k-ĉore lookup versus recomputing the k-core of a
   label's subgraph from scratch (the index's reason to exist);
2. Lemma 3's incremental candidate intersection versus verifying each
   subtree from its leaf labels (incre's edge over repeated verifyPtree).

Expected shape: both index paths win by an order of magnitude or more.
"""

import time

from repro.bench import Table, save_tables
from repro.core import FeasibilityOracle
from repro.graph import k_core_within
from repro.ptree.enumeration import rightmost_extensions

from conftest import DEFAULT_K


def test_ablation_index_lookup_vs_recompute(benchmark, datasets, workloads):
    pg = datasets["acmdl"]
    index = pg.index()
    queries = list(workloads["acmdl"])
    # Pick the busiest labels of each query's profile.
    probes = []
    for q in queries:
        for label in sorted(pg.labels(q))[:6]:
            probes.append((q, label))

    start = time.perf_counter()
    for q, label in probes:
        index.get(DEFAULT_K, q, label)
    indexed_ms = (time.perf_counter() - start) * 1000.0

    start = time.perf_counter()
    for q, label in probes:
        members = index.vertices_with_label(label)
        k_core_within(pg.graph, members, DEFAULT_K, q=q)
    recompute_ms = (time.perf_counter() - start) * 1000.0

    table = Table(
        "Ablation — per-label k-ĉore retrieval (total ms over probes)",
        ["strategy", "total ms", "probes"],
    )
    table.add_row("CL-tree lookup (index)", round(indexed_ms, 3), len(probes))
    table.add_row("peel from scratch", round(recompute_ms, 3), len(probes))
    table.show()

    # The index must win decisively (it answers from precomputed cores).
    assert indexed_ms < recompute_ms

    # --- Lemma 3 incremental verification vs from-leaves verification.
    q = queries[0]
    oracle_incr = FeasibilityOracle(pg, q, DEFAULT_K, index=index)
    base = oracle_incr.base_nodes
    tax = pg.taxonomy
    # Warm the CL-tree subtree caches so neither strategy pays one-time
    # materialisation costs inside its timed region.
    for x in base:
        index.get(DEFAULT_K, q, x)

    def sweep_incremental():
        oracle = FeasibilityOracle(pg, q, DEFAULT_K, index=index)
        stack = [(frozenset({tax.root}), tax.preorder(tax.root))]
        seen = 0
        while stack and seen < 200:
            current, bound = stack.pop()
            for x in rightmost_extensions(tax, base, current):
                child = current | {x}
                seen += 1
                if oracle.is_feasible_from_parent(child, current, x):
                    stack.append((child, tax.preorder(x)))
        return seen

    def sweep_from_leaves():
        oracle = FeasibilityOracle(pg, q, DEFAULT_K, index=index)
        stack = [(frozenset({tax.root}), tax.preorder(tax.root))]
        seen = 0
        while stack and seen < 200:
            current, bound = stack.pop()
            for x in rightmost_extensions(tax, base, current):
                child = current | {x}
                seen += 1
                if oracle.is_feasible(child):
                    stack.append((child, tax.preorder(x)))
        return seen

    # One untimed round each, then timed rounds (order-independent).
    sweep_from_leaves()
    sweep_incremental()
    start = time.perf_counter()
    sweep_incremental()
    incr_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    sweep_from_leaves()
    leaves_ms = (time.perf_counter() - start) * 1000.0

    table2 = Table(
        "Ablation — subtree verification strategy (one bounded sweep, ms)",
        ["strategy", "ms"],
    )
    table2.add_row("Lemma 3 incremental", round(incr_ms, 3))
    table2.add_row("verifyPtree from leaves", round(leaves_ms, 3))
    table2.show()
    save_tables(
        "ablation_index",
        [table, table2],
        extra={
            "lookup_ms": indexed_ms,
            "recompute_ms": recompute_ms,
            "incremental_ms": incr_ms,
            "from_leaves_ms": leaves_ms,
        },
    )

    benchmark(lambda: index.get(DEFAULT_K, probes[0][0], probes[0][1]))
