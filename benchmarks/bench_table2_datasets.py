"""Table 2 — dataset statistics.

Regenerates the paper's dataset table. The paper reports full-scale corpora;
we generate calibrated synthetic analogues at bench scale, so the check is
that the *intensive* statistics (average degree d̂, average P-tree size P̂,
GP-tree size) land near the paper's values while n and m scale down
proportionally.
"""


from repro.bench import Table, save_tables
from repro.datasets import DATASET_SPECS, load_dataset

from conftest import bench_scale


def test_table2_dataset_statistics(benchmark, datasets):
    table = Table(
        "Table 2 — datasets (paper full-scale vs generated at bench scale)",
        [
            "dataset",
            "n(paper)",
            "m(paper)",
            "d̂(paper)",
            "P̂(paper)",
            "|GP|(paper)",
            "n(gen)",
            "m(gen)",
            "d̂(gen)",
            "P̂(gen)",
            "|GP|(gen)",
        ],
    )
    for name, pg in datasets.items():
        spec = DATASET_SPECS[name]
        stats = pg.stats()
        table.add_row(
            name,
            spec.paper_vertices,
            spec.paper_edges,
            spec.paper_avg_degree,
            spec.paper_avg_ptree,
            spec.paper_gp_size,
            stats.num_vertices,
            stats.num_edges,
            round(stats.average_degree, 2),
            round(stats.average_ptree_size, 2),
            stats.gp_tree_size,
        )
        # Intensive statistics must land near the paper's values.
        assert abs(stats.average_degree - spec.paper_avg_degree) <= 0.35 * spec.paper_avg_degree
        assert stats.gp_tree_size == spec.paper_gp_size
    table.show()
    save_tables("table2_datasets", [table])

    # Benchmark: regenerating the smallest dataset end to end.
    benchmark(lambda: load_dataset("acmdl", scale=bench_scale("acmdl")))
