"""Fig. 12 — comparing profile-cohesiveness metric definitions (§5.3).

Runs the four candidate metrics — (a) common nodes, (b) common paths,
(c) common subtree (the PCS definition), (d) similarity threshold — on the
ACMDL and PubMed analogues and scores CPS / LDR / community number / CPF.
Expected shape: metric (c) dominates or matches every other metric on the
quality indices, which is the paper's justification for the PCS definition.
"""

from repro.bench import Table, save_tables
from repro.core import METRIC_VARIANTS
from repro.metrics import (
    community_pairwise_similarity,
    community_ptree_frequency,
    level_diversity_ratio,
)

from conftest import DEFAULT_K

DATASETS = ("acmdl", "pubmed")


def test_fig12_metric_variant_comparison(benchmark, datasets, workloads):
    tables = {
        "cps": Table("Fig. 12(a) — CPS per metric", ["dataset", "a:nodes", "b:paths", "c:subtree", "d:similarity"]),
        "ldr": Table("Fig. 12(b) — LDR vs metric (c)", ["dataset", "a:nodes", "b:paths", "c:subtree", "d:similarity"]),
        "num": Table("Fig. 12(c) — communities per query", ["dataset", "a:nodes", "b:paths", "c:subtree", "d:similarity"]),
        "cpf": Table("Fig. 12(d) — CPF per metric", ["dataset", "a:nodes", "b:paths", "c:subtree", "d:similarity"]),
    }
    summary = {}
    for name in DATASETS:
        pg = datasets[name]
        per_metric = {key: [] for key in METRIC_VARIANTS}
        per_query = {key: [] for key in METRIC_VARIANTS}
        for q in workloads[name]:
            results = {
                key: list(fn(pg, q, DEFAULT_K))
                for key, fn in METRIC_VARIANTS.items()
            }
            for key, communities in results.items():
                per_metric[key].append((q, communities))
                per_query[key].append(communities)
        rows = {stat: [name] for stat in tables}
        summary[name] = {}
        subtree_results = {q: comms for q, comms in per_metric["c"]}
        for key in ("a", "b", "c", "d"):
            vertex_sets = [
                c.vertices for _, comms in per_metric[key] for c in comms
            ]
            cps = community_pairwise_similarity(pg, vertex_sets)
            ldrs = [
                level_diversity_ratio(pg, q, comms, subtree_results[q])
                for q, comms in per_metric[key]
            ]
            ldr = sum(ldrs) / len(ldrs) if ldrs else 0.0
            counts = [len(comms) for comms in per_query[key]]
            num = sum(counts) / len(counts) if counts else 0.0
            cpfs = [
                community_ptree_frequency(pg, q, [c.vertices for c in comms])
                for q, comms in per_metric[key]
                if comms
            ]
            cpf = sum(cpfs) / len(cpfs) if cpfs else 0.0
            summary[name][key] = {"cps": cps, "ldr": ldr, "num": num, "cpf": cpf}
            rows["cps"].append(round(cps, 3))
            rows["ldr"].append(round(ldr, 3))
            rows["num"].append(round(num, 2))
            rows["cpf"].append(round(cpf, 3))
        for stat, table in tables.items():
            table.add_row(*rows[stat])
        # Metric (c) finds at least as many communities and full per-level
        # diversity by construction (LDR of c vs c is 1).
        assert summary[name]["c"]["ldr"] == 1.0
        assert summary[name]["c"]["num"] >= summary[name]["a"]["num"] - 1e-9
    for table in tables.values():
        table.show()
    save_tables("fig12_metric_variants", list(tables.values()), extra={"summary": summary})

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]
    benchmark(lambda: METRIC_VARIANTS["c"](pg, q, DEFAULT_K))
