"""Process-parallel serving — sharded warm-batch speedup vs in-process.

The parallel PR's acceptance benchmark: on the synthetic dataset, serve one
warm batch of cache-cold queries through a
:class:`~repro.parallel.ParallelExplorer` at 1 worker (the in-process
baseline — the pool never starts) and at :data:`WORKERS` workers (sharded
across a process fleet), and assert

* **correctness** — the parallel results are identical to the sequential
  ones (community-by-community, member sets and subtrees), always;
* **speedup** — the 4-worker batch is at least :data:`MIN_SPEEDUP`× faster
  than the 1-worker batch, *when the host actually has cores to run it*
  (at least :data:`MIN_CORES_FOR_SPEEDUP` usable CPUs — CI runners do; a
  single-core container cannot physically exhibit process parallelism, so
  there the speedup gate is skipped and reported as such, while the
  correctness half still runs).

"Warm batch" means every one-time cost is paid before the clock starts:
the parent index is built, the fleet is bootstrapped (graph shipped,
worker engines up), and each round serves the workload with the result
cache cleared — the steady state of a loaded serving session, where only
per-batch work differs between the modes.

Runs two ways, like the other acceptance benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_throughput.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.bench import (
    Table,
    make_workload,
    measure_parallel_scaling,
    save_tables,
    smoke_mode,
)
from repro.parallel import recommended_workers

#: Acceptance floor: sharded warm-batch serving vs the in-process baseline.
MIN_SPEEDUP = 2.0

#: Fleet width the acceptance criterion is stated at.
WORKERS = 4

#: Usable CPUs below which the speedup gate is skipped (correctness still
#: asserted). A 1-core host time-slices the fleet; no process layout can
#: beat sequential there.
MIN_CORES_FOR_SPEEDUP = 2

#: Batch size floor — the generic smoke workload cap (2 queries) is below
#: the parallel dispatch threshold and could never show sharding.
BATCH_SIZE = 16

#: ``basic`` is the heaviest per-query compute and index-free: the
#: measurement isolates shard execution rather than worker index builds.
METHOD = "basic"

ROUNDS = 2


def measure(pg, workload, workers: int = WORKERS) -> dict:
    report = measure_parallel_scaling(
        pg, workload, method=METHOD, worker_counts=(1, workers), rounds=ROUNDS
    )
    report["cores"] = recommended_workers()
    report["workers"] = workers
    report["speedup"] = report["speedups"][workers]
    report["speedup_gated"] = report["cores"] >= MIN_CORES_FOR_SPEEDUP
    return report


def _render(payload: dict) -> Table:
    table = Table(
        "Parallel throughput — sharded batch (4 workers) vs in-process (1)",
        ["dataset", "batch", "1w ms/q", f"{WORKERS}w ms/q", "speedup", "equal", "cores"],
    )
    for row in payload.values():
        m1 = row["measurements"][1]
        mn = row["measurements"][row["workers"]]
        n = row["batch_size"]
        table.add_row(
            row["dataset"],
            n,
            round(m1["elapsed_seconds"] / n * 1000.0, 2),
            round(mn["elapsed_seconds"] / n * 1000.0, 2),
            round(row["speedup"], 2),
            "yes" if row["all_equal"] else "NO",
            row["cores"],
        )
    return table


def _check(name: str, row: dict) -> list:
    """Correctness always; speedup only where cores make it physical."""
    failures = []
    if not row["all_equal"]:
        failures.append(f"{name}: parallel results differ from sequential")
    if row["speedup_gated"] and row["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"{name}: {row['workers']}-worker warm batch only "
            f"{row['speedup']:.2f}x the 1-worker baseline "
            f"(need >= {MIN_SPEEDUP}x on {row['cores']} cores)"
        )
    return failures


@pytest.mark.smoke
def test_parallel_throughput(datasets):
    """Sharded warm batches: identical results, >=2x at 4 workers (gated)."""
    pg = datasets["acmdl"]
    workload = make_workload(pg, "acmdl", num_queries=BATCH_SIZE, k=6, seed=7)
    payload = {"acmdl": measure(pg, workload)}
    table = _render(payload)
    table.show()
    save_tables("parallel_throughput", [table], extra={"measurements": payload})

    failures = _check("acmdl", payload["acmdl"])
    assert not failures, "; ".join(failures)
    if not payload["acmdl"]["speedup_gated"]:
        pytest.skip(
            f"speedup gate skipped: host has {payload['acmdl']['cores']} usable "
            f"core(s), need >= {MIN_CORES_FOR_SPEEDUP} (results-equal check passed)"
        )


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--dataset", default="acmdl")
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--out", default=None,
                        help="results name (default parallel_throughput[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    from conftest import BENCH_SCALES, bench_scale

    from repro.datasets import load_dataset

    if args.dataset not in BENCH_SCALES:
        parser.error(f"unknown dataset {args.dataset!r}; choose from {sorted(BENCH_SCALES)}")
    pg = load_dataset(args.dataset, scale=bench_scale(args.dataset))
    workload = make_workload(
        pg, args.dataset, num_queries=args.num_queries or BATCH_SIZE, k=args.k, seed=7
    )
    payload = {args.dataset: measure(pg, workload, workers=args.workers)}
    table = _render(payload)
    table.show()
    result_name = args.out or (
        "parallel_throughput_smoke" if smoke_mode() else "parallel_throughput"
    )
    path = save_tables(result_name, [table], extra={"measurements": payload})
    print(f"\nwrote {path}")

    row = payload[args.dataset]
    failures = _check(args.dataset, row)
    if not row["speedup_gated"]:
        print(
            f"NOTE: speedup gate skipped ({row['cores']} usable core(s) < "
            f"{MIN_CORES_FOR_SPEEDUP}); results-equal check "
            f"{'passed' if row['all_equal'] else 'FAILED'}"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
