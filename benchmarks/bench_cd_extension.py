"""Extension benchmark — community detection via PCS (paper §2's note).

"It is also interesting to examine how our PCS solutions can be extended
to support CD." We sweep PCS seeds over the ACMDL analogue and score the
resulting cover against the planted ground truth with the overlap-aware
measures (best-match Jaccard, NMI, omega index), comparing against a
single-method topology-only cover (connected k-ĉores of the same seeds).

Expected shape: the PCS cover matches the planted communities markedly
better than the topology-only cover — themes identify the planted groups
inside the k-core where topology alone merges them.
"""

from repro.analysis import average_jaccard_match, omega_index, overlapping_nmi
from repro.bench import Table, save_tables
from repro.core import coverage, detect_communities
from repro.datasets import load_dataset
from repro.graph import connected_k_core, core_numbers

from conftest import DEFAULT_K, bench_scale


def topology_cover(pg, k):
    """Connected k-ĉores by seed sweep (what CD-from-CS looks like without profiles)."""
    core = core_numbers(pg.graph)
    seeds = sorted((v for v, c in core.items() if c >= k), key=lambda v: (-core[v], v))
    covered = set()
    cover = []
    for seed in seeds:
        if seed in covered:
            continue
        community = connected_k_core(pg.graph, seed, k)
        if community:
            cover.append(community)
            covered |= community
        else:
            covered.add(seed)
    return cover


def test_cd_extension_quality(benchmark):
    pg, truth = load_dataset(
        "acmdl", scale=bench_scale("acmdl") / 2, with_ground_truth=True
    )
    truth_sets = [frozenset(c) for c in truth if len(c) >= 4]
    communities = detect_communities(pg, DEFAULT_K, min_size=4)
    pcs_cover = [c.vertices for c in communities]
    topo_cover = topology_cover(pg, DEFAULT_K)
    universe = sorted(pg.vertices())

    rows = {}
    for label, cover in (("PCS cover", pcs_cover), ("k-ĉore cover", topo_cover)):
        rows[label] = {
            "communities": len(cover),
            "jaccard": average_jaccard_match(cover, truth_sets),
            "nmi": overlapping_nmi(cover, truth_sets, len(universe)),
            "omega": omega_index(cover, truth_sets, universe),
        }
    table = Table(
        f"CD extension — cover quality vs planted ground truth (k={DEFAULT_K})",
        ["cover", "#communities", "best-match Jaccard", "NMI", "omega"],
    )
    for label, stats in rows.items():
        table.add_row(
            label,
            stats["communities"],
            round(stats["jaccard"], 3),
            round(stats["nmi"], 3),
            round(stats["omega"], 3),
        )
    table.show()
    save_tables("cd_extension", [table], extra={"rows": rows})

    assert rows["PCS cover"]["jaccard"] > rows["k-ĉore cover"]["jaccard"]
    assert rows["PCS cover"]["communities"] >= rows["k-ĉore cover"]["communities"]
    assert coverage(pg, communities) > 0.2

    benchmark(lambda: detect_communities(pg, DEFAULT_K, min_size=4, max_seeds=5))
