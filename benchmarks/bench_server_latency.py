"""HTTP serving latency — request coalescing on vs off under concurrency.

The serving PR's acceptance benchmark. A 16-client concurrent workload of
overlapping hot queries (the thundering-herd shape: many independent users
probing a few popular vertices at once) is driven through the real HTTP
gateway twice:

* **coalescing off** — every request is its own ``service.query`` call in
  its own handler thread (thread-per-request serving);
* **coalescing on** — concurrent requests merge into batch dispatches, so
  the engine's in-batch deduplication answers each distinct query once per
  batch instead of once per request.

The served engine runs with its result cache *disabled*, which is the
steady state this mechanism exists for: a cache can only serve what it has
already computed, so simultaneous first arrivals of a hot query (or any
arrival pattern racing invalidation after updates) all recompute unless
something merges them. Coalescing is that something.

Asserted:

* **correctness** — per-vertex answers are identical between the modes
  (envelope equality modulo timings), always;
* **throughput** — coalesced serving is at least :data:`MIN_SPEEDUP`× the
  per-request baseline. The win comes from deduplication, not process
  parallelism, so — unlike ``bench_parallel_throughput`` — it does not
  need multiple cores (CPython threads time-slice the same compute either
  way); the gate therefore applies on any host, with the core count
  recorded for diagnosis. Like the PR-4 gate it is smoke-aware: smoke mode
  shrinks the dataset and the request volume, not the assertion.

Reported: p50/p95/p99 latency and queries/sec for both modes.

Runs two ways, like the other acceptance benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_server_latency.py --smoke
    PYTHONPATH=src python benchmarks/bench_server_latency.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import pytest

from repro.api import CommunityService, Query
from repro.bench import Table, make_workload, save_tables, smoke_mode
from repro.parallel import recommended_workers
from repro.server import CommunityGateway, ServerClient

#: Acceptance floor: coalesced throughput over thread-per-request serving.
MIN_SPEEDUP = 1.5

#: Concurrent clients (the acceptance criterion is stated at 16).
CLIENTS = 16

#: Distinct hot vertices the clients contend on; the per-batch dedup bound
#: is CLIENTS/DISTINCT = 4x, so the 1.5x gate has real headroom.
DISTINCT = 4

#: ``basic`` is the heaviest per-query compute: the measurement isolates
#: what coalescing saves (repeated computation) from HTTP overhead.
METHOD = "basic"

#: Window the coalescer holds a batch open. Generous relative to per-query
#: compute so concurrent arrivals actually share batches.
WINDOW = 0.01

K = 6


def requests_per_client() -> int:
    return 4 if smoke_mode() else 8


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _drive_clients(host: str, port: int, vertices, requests: int):
    """16 client threads, each with its own connection; returns
    (wall_seconds, latencies, envelopes-by-vertex)."""
    latencies = []
    envelopes = {}
    errors = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(CLIENTS + 1)

    def worker(worker_id: int) -> None:
        try:
            with ServerClient(host, port) as client:
                start_barrier.wait()
                for i in range(requests):
                    vertex = vertices[(worker_id + i) % len(vertices)]
                    t0 = time.perf_counter()
                    payload = client.query_raw(
                        Query(vertex=vertex, k=K, method=METHOD).to_dict()
                    )
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                        envelopes.setdefault(vertex, payload)
        except Exception as exc:  # noqa: BLE001 - surfaced in the assertion
            with lock:
                errors.append(exc)
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(CLIENTS)]
    for t in threads:
        t.start()
    try:
        start_barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker failed during connect; its error is in `errors`
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    if errors:
        # Surface the root cause, not a sympathetic BrokenBarrierError
        # raised in workers that were already waiting when one aborted.
        root = [e for e in errors if not isinstance(e, threading.BrokenBarrierError)]
        raise (root or errors)[0]
    return wall, sorted(latencies), envelopes


def _measure_mode(pg, vertices, coalesce: bool, requests: int) -> dict:
    # cache_size=0: every arrival recomputes unless coalescing merges it —
    # the thundering-herd scenario this benchmark isolates (see module doc).
    service = CommunityService(pg, cache_size=0)
    with CommunityGateway(
        service, port=0, coalesce=coalesce, coalesce_window=WINDOW, warm=True
    ) as gateway:
        host, port = gateway.address
        wall, latencies, envelopes = _drive_clients(host, port, vertices, requests)
        coalescer = gateway.coalescer.stats() if gateway.coalescer else None
        engine = service.stats()
    total = CLIENTS * requests
    return {
        "coalesce": coalesce,
        "requests": total,
        "wall_seconds": wall,
        "throughput_qps": total / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "computed": engine.queries_served,
        "mean_batch": coalescer["mean_batch_size"] if coalescer else 1.0,
        "envelopes": envelopes,
    }


def _strip_timings(envelope: dict) -> dict:
    """Drop fields legally differing between modes (timings only — both
    modes run cache-off at one graph version, so provenance must match)."""
    cleaned = dict(envelope)
    cleaned.pop("elapsed_ms", None)
    return cleaned


def measure(pg, vertices, requests: int) -> dict:
    off = _measure_mode(pg, vertices, coalesce=False, requests=requests)
    on = _measure_mode(pg, vertices, coalesce=True, requests=requests)
    mismatched = [
        v
        for v in vertices
        if _strip_timings(off["envelopes"][v]) != _strip_timings(on["envelopes"][v])
    ]
    for mode in (off, on):
        mode.pop("envelopes")
    return {
        "clients": CLIENTS,
        "distinct_vertices": len(vertices),
        "method": METHOD,
        "cores": recommended_workers(),
        "uncoalesced": off,
        "coalesced": on,
        "speedup": on["throughput_qps"] / off["throughput_qps"]
        if off["throughput_qps"]
        else 0.0,
        "all_equal": not mismatched,
        "mismatched_vertices": [repr(v) for v in mismatched],
    }


def _render(name: str, report: dict) -> Table:
    table = Table(
        "HTTP serving — coalesced vs per-request dispatch "
        f"({report['clients']} concurrent clients)",
        ["dataset", "mode", "qps", "p50 ms", "p95 ms", "p99 ms", "computed"],
    )
    for label, mode in (("per-request", "uncoalesced"), ("coalesced", "coalesced")):
        row = report[mode]
        table.add_row(
            name,
            label,
            round(row["throughput_qps"], 1),
            round(row["p50_ms"], 2),
            round(row["p95_ms"], 2),
            round(row["p99_ms"], 2),
            row["computed"],
        )
    return table


def _check(name: str, report: dict) -> list:
    failures = []
    if not report["all_equal"]:
        failures.append(
            f"{name}: coalesced answers differ from per-request answers "
            f"for {report['mismatched_vertices']}"
        )
    if report["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"{name}: coalescing only {report['speedup']:.2f}x per-request "
            f"throughput (need >= {MIN_SPEEDUP}x; mean batch "
            f"{report['coalesced']['mean_batch']:.1f}, {report['cores']} core(s))"
        )
    return failures


@pytest.mark.smoke
def test_server_latency(datasets):
    """Coalesced HTTP serving: identical answers, >=1.5x throughput."""
    pg = datasets["acmdl"]
    vertices = make_workload(pg, "acmdl", num_queries=DISTINCT, k=K, seed=7).queries
    report = measure(pg, list(vertices), requests_per_client())
    table = _render("acmdl", report)
    table.show()
    save_tables("server_latency", [table], extra={"measurements": {"acmdl": report}})
    failures = _check("acmdl", report)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--dataset", default="acmdl")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 8; smoke 4)")
    parser.add_argument("--out", default=None,
                        help="results name (default server_latency[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    from conftest import BENCH_SCALES, bench_scale

    from repro.datasets import load_dataset

    if args.dataset not in BENCH_SCALES:
        parser.error(
            f"unknown dataset {args.dataset!r}; choose from {sorted(BENCH_SCALES)}"
        )
    pg = load_dataset(args.dataset, scale=bench_scale(args.dataset))
    vertices = make_workload(
        pg, args.dataset, num_queries=DISTINCT, k=K, seed=7
    ).queries
    report = measure(pg, list(vertices), args.requests or requests_per_client())
    table = _render(args.dataset, report)
    table.show()
    result_name = args.out or (
        "server_latency_smoke" if smoke_mode() else "server_latency"
    )
    path = save_tables(
        result_name, [table], extra={"measurements": {args.dataset: report}}
    )
    print(f"\nwrote {path}")

    failures = _check(args.dataset, report)
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(f"OK: coalescing {report['speedup']:.2f}x "
          f"(mean batch {report['coalesced']['mean_batch']:.1f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
