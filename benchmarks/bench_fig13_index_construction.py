"""Fig. 13 — CP-tree index construction efficiency and scalability.

Reproduces the three construction sweeps of the paper:

* (a) versus the fraction of vertices (20%…100%);
* (b) versus the fraction of each vertex's P-tree nodes;
* (c) versus the fraction of the GP-tree.

Expected shape: construction time grows (near-)linearly along each axis,
confirming the paper's O(|P|·m·α(n)) analysis. We assert sub-quadratic
growth (time ratio bounded by ~2× the size ratio) rather than exact
linearity — small scales are noisy.
"""

import time

from repro.bench import Table, save_tables

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _build_time(pg) -> float:
    start = time.perf_counter()
    pg.index(rebuild=True)
    return time.perf_counter() - start


def _sweep(base, sampler):
    times = []
    for fraction in FRACTIONS:
        sample = sampler(base, fraction)
        times.append(_build_time(sample))
    return times


def _assert_subquadratic(times):
    # Full-size build must cost clearly less than quadratic growth over the
    # 5x size range (quadratic would be 25x; linear 5x). Sub-50ms baselines
    # are dominated by constant overheads and timing noise — skip those.
    if times[0] >= 0.05:
        assert times[-1] / times[0] <= 20.0, times


def test_fig13_index_construction_scalability(benchmark, datasets):
    tables = []
    payload = {}
    sweeps = {
        "(a) vertices": lambda pg, f: pg.sample_vertices(f, seed=5),
        "(b) P-trees": lambda pg, f: pg.sample_ptrees(f, seed=5),
        "(c) GP-tree": lambda pg, f: pg.restrict_gp_tree(f, seed=5),
    }
    for label, sampler in sweeps.items():
        table = Table(
            f"Fig. 13{label} — CP-tree construction time (s)",
            ["dataset"] + [f"{f:.0%}" for f in FRACTIONS],
        )
        payload[label] = {}
        for name, pg in datasets.items():
            times = _sweep(pg, sampler)
            payload[label][name] = times
            table.add_row(name, *(round(t, 3) for t in times))
            _assert_subquadratic(times)
            # growth trend, with slack for single-run timing noise (the
            # GP-tree sweep rebuilds restructure labels non-monotonically)
            assert times[-1] >= times[0] * 0.5
        tables.append(table)
        table.show()
    save_tables("fig13_index_construction", tables, extra={"seconds": payload})

    small = datasets["acmdl"].sample_vertices(0.2, seed=5)
    benchmark(lambda: small.index(rebuild=True))
