"""Ablation — alternative structure-cohesiveness models inside PCS.

The paper proposes (§1, §6) replacing the minimum-degree metric with k-truss
or k-clique cohesion. This ablation runs full PCS under all three models on
the ACMDL analogue and reports community counts, sizes and per-query time.

Expected shape: k-truss/k-clique communities are subsets of the k-core ones
(triangle-based cohesion is strictly stronger), with higher per-query cost
(support/clique computations dominate the peel).
"""

from repro.bench import Table, save_tables
from repro.core import pcs

MODELS = ("k-core", "k-truss", "k-clique")
#: Truss/clique parameters are triangle counts; k=4 keeps all three models
#: satisfiable on the bench datasets.
K = 4


def test_ablation_cohesion_models(benchmark, datasets, workloads):
    pg = datasets["acmdl"]
    queries = list(workloads["acmdl"])[:3]
    table = Table(
        f"Ablation — PCS under different cohesion models (acmdl, k={K})",
        ["model", "ms/query", "communities/query", "avg community size"],
    )
    payload = {}
    results_by_model = {}
    for model in MODELS:
        total_ms = 0.0
        counts = []
        sizes = []
        per_query = {}
        for q in queries:
            result = pcs(pg, q, K, cohesion=model)
            per_query[q] = result
            total_ms += result.elapsed_seconds * 1000.0
            counts.append(len(result))
            sizes.extend(c.size for c in result)
        results_by_model[model] = per_query
        payload[model] = {
            "ms": total_ms / len(queries),
            "count": sum(counts) / len(counts),
            "size": sum(sizes) / len(sizes) if sizes else 0.0,
        }
        table.add_row(
            model,
            round(payload[model]["ms"], 2),
            round(payload[model]["count"], 2),
            round(payload[model]["size"], 2),
        )
    table.show()
    save_tables("ablation_cohesion", [table], extra={"summary": payload})

    # Structural sanity: a k-truss community is internally a (k−1)-core
    # (every vertex gains k−2 triangle partners per incident truss edge),
    # and both alternative models still honour connectivity + membership.
    from repro.graph import minimum_degree

    for q in queries:
        for model in ("k-truss", "k-clique"):
            for community in results_by_model[model][q]:
                assert q in community.vertices
                pgv = pg.graph
                assert pgv.component_of(q, within=community.vertices) == community.vertices
                if model == "k-truss":
                    assert minimum_degree(pgv, community.vertices) >= K - 1

    q = queries[0]
    benchmark(lambda: pcs(pg, q, K, cohesion="k-truss"))
