"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper. Datasets
are generated once per session at `BENCH_SCALES` (a few thousand vertices —
pure-Python budgets; see DESIGN.md §4 for the calibration) and reused.

Environment knobs:

* ``REPRO_BENCH_QUERIES`` — queries per workload (default 5; the paper uses
  100 on a Java implementation);
* ``REPRO_BENCH_SCALE``   — multiplier applied to every dataset scale;
* ``REPRO_BENCH_SMOKE``   — CI fast path (also set by ``pytest --smoke``):
  halves dataset scales, caps workloads at 2 queries, single repeats.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import make_workload, smoke_mode
from repro.datasets import load_dataset, load_ego_network

#: Smoke-mode budgets (seconds-scale total runtime under CI).
SMOKE_QUERY_CAP = 2
SMOKE_SCALE_MULT = 0.5

#: Default generation scales (fraction of the paper's vertex counts).
BENCH_SCALES: dict = {
    "acmdl": 0.02,
    "flickr": 0.005,
    "pubmed": 0.005,
    "dblp": 0.003,
}

#: The paper's default structure parameter (§5.1).
DEFAULT_K = 6


def bench_queries() -> int:
    queries = int(os.environ.get("REPRO_BENCH_QUERIES", "5"))
    return min(queries, SMOKE_QUERY_CAP) if smoke_mode() else queries


def bench_scale(name: str) -> float:
    mult = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if smoke_mode():
        mult *= SMOKE_SCALE_MULT
    return min(1.0, BENCH_SCALES[name] * mult)


@pytest.fixture(scope="session")
def datasets():
    """name → ProfiledGraph with a pre-built CP-tree index."""
    loaded = {}
    for name in BENCH_SCALES:
        pg = load_dataset(name, scale=bench_scale(name))
        pg.index()
        loaded[name] = pg
    return loaded


@pytest.fixture(scope="session")
def workloads(datasets):
    """name → Workload of query vertices from the 6-core (paper §5.1)."""
    return {
        name: make_workload(pg, name, num_queries=bench_queries(), k=DEFAULT_K, seed=7)
        for name, pg in datasets.items()
    }


@pytest.fixture(scope="session")
def ego_networks():
    """name → (ProfiledGraph, ground-truth circles) for FB1–FB3."""
    loaded = {}
    for name in ("fb1", "fb2", "fb3"):
        pg, circles = load_ego_network(name, seed=7)
        pg.index()
        loaded[name] = (pg, [frozenset(c) for c in circles])
    return loaded
