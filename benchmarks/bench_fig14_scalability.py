"""Fig. 14(e–p) — scalability of the index-based methods.

Three sweeps at the default k = 6, mirroring the paper:

* (e–h) fraction of vertices 20%…100% ("vertices' P-trees are fully
  considered");
* (i–l) fraction of each vertex's P-tree nodes;
* (m–p) fraction of the GP-tree.

Expected shape: all methods slow down as each axis grows; adv-D / adv-P
scale best, incre worst among the index-based methods (basic is excluded,
as in the paper's own scalability plots, which drop it "afterwards").
"""

from repro.bench import Table, make_workload, save_tables
from repro.core import pcs

from conftest import DEFAULT_K, bench_queries

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
METHODS = ("incre", "adv-I", "adv-D", "adv-P")

SWEEPS = {
    "(e-h) vertices": lambda pg, f: pg.sample_vertices(f, seed=9),
    "(i-l) P-trees": lambda pg, f: pg.sample_ptrees(f, seed=9),
    "(m-p) GP-tree": lambda pg, f: pg.restrict_gp_tree(f, seed=9),
}


def _mean_query_ms(pg, queries, method):
    total = 0.0
    count = 0
    for q in queries:
        if q not in pg:
            continue
        total += pcs(pg, q, DEFAULT_K, method=method).elapsed_seconds
        count += 1
    return (total / count) * 1000.0 if count else 0.0


def test_fig14_scalability_sweeps(benchmark, datasets):
    tables = []
    payload = {}
    for label, sampler in SWEEPS.items():
        payload[label] = {}
        for name, pg in datasets.items():
            table = Table(
                f"Fig. 14{label} — {name}: per-query time (ms), k={DEFAULT_K}",
                ["method"] + [f"{f:.0%}" for f in FRACTIONS],
            )
            payload[label][name] = {}
            samples = []
            for fraction in FRACTIONS:
                sample = sampler(pg, fraction)
                sample.index(rebuild=fraction < 1.0)
                workload = make_workload(
                    sample, name, num_queries=bench_queries(), k=DEFAULT_K, seed=13
                )
                samples.append((fraction, sample, list(workload)))
            for method in METHODS:
                row = [
                    _mean_query_ms(sample, queries, method)
                    for _, sample, queries in samples
                ]
                payload[label][name][method] = row
                table.add_row(method, *(round(v, 2) for v in row))
            tables.append(table)
            table.show()
    save_tables("fig14_scalability", tables, extra={"ms": payload})

    # Shape check on the vertex sweep of every dataset: the best advanced
    # method at full size is not slower than incre (within noise).
    for name in datasets:
        full = payload["(e-h) vertices"][name]
        best_adv = min(full["adv-D"][-1], full["adv-P"][-1])
        assert best_adv <= full["incre"][-1] * 1.25 + 1.0

    pg = datasets["acmdl"].sample_vertices(0.4, seed=9)
    pg.index()
    workload = make_workload(pg, "acmdl", num_queries=1, k=DEFAULT_K, seed=13)
    q = workload.queries[0]
    benchmark(lambda: pcs(pg, q, DEFAULT_K, method="adv-P"))
