"""Ablation — closure jumping versus the paper's methods.

The library's ``closed`` method (repro.core.closed) enumerates closed
feasible subtrees directly, skipping both the Apriori interior sweep and
the border walk. This ablation quantifies the gap on the two datasets with
the largest search spaces.

Expected shape: identical answers; verification counts near the number of
distinct communities (single digits) versus hundreds/thousands for incre.
"""

from repro.bench import Table, save_tables
from repro.core import as_vertex_subtree_map, pcs

from conftest import DEFAULT_K

DATASETS = ("flickr", "dblp")
METHODS = ("incre", "adv-P", "closed")


def test_ablation_closed_method(benchmark, datasets, workloads):
    table = Table(
        f"Ablation — closure jumping (k={DEFAULT_K})",
        ["dataset", "method", "ms/query", "verifications/query"],
    )
    payload = {}
    for name in DATASETS:
        pg = datasets[name]
        queries = list(workloads[name])
        payload[name] = {}
        reference = None
        for method in METHODS:
            total_ms = 0.0
            total_ver = 0
            answer_maps = []
            for q in queries:
                result = pcs(pg, q, DEFAULT_K, method=method)
                total_ms += result.elapsed_seconds * 1000.0
                total_ver += result.num_verifications
                answer_maps.append(as_vertex_subtree_map(result))
            payload[name][method] = {
                "ms": total_ms / len(queries),
                "verifications": total_ver / len(queries),
            }
            table.add_row(
                name,
                method,
                round(total_ms / len(queries), 2),
                round(total_ver / len(queries), 1),
            )
            if reference is None:
                reference = answer_maps
            else:
                assert answer_maps == reference, f"{method} diverged on {name}"
        # Closure jumping never sweeps the interior: it pays roughly
        # (#closed sets × |alive T(q)|) verifications, far below incre's
        # interior sweep. adv-P can still beat it on thin-border queries
        # (it verifies only the border), so only the incre bound is firm.
        closed_v = payload[name]["closed"]["verifications"]
        assert closed_v <= payload[name]["incre"]["verifications"] + 5
    table.show()
    save_tables("ablation_closed", [table], extra={"summary": payload})

    pg = datasets["dblp"]
    q = workloads["dblp"].queries[0]
    benchmark(lambda: pcs(pg, q, DEFAULT_K, method="closed"))
