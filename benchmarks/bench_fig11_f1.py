"""Table 4 + Fig. 11 — F1 accuracy against ground-truth circles.

Generates the three Facebook-style ego networks at the paper's sizes
(Table 4), queries members of ground-truth circles, and scores each method's
best-match F1 (Fig. 11). Expected shape: PCS achieves the highest and most
stable accuracy across the three networks; topology-only methods trail.
"""

from repro.baselines import acq_query, global_community_k, local_community
from repro.bench import Table, make_workload, save_tables
from repro.core import pcs
from repro.datasets import EGO_SPECS
from repro.metrics import best_match_f1

from conftest import DEFAULT_K, bench_queries


def test_table4_and_fig11_f1(benchmark, ego_networks):
    stats_table = Table(
        "Table 4 — ego networks (paper vs generated)",
        ["network", "n(paper)", "m(paper)", "d̂(paper)", "P̂(paper)", "n(gen)", "m(gen)", "d̂(gen)", "P̂(gen)"],
    )
    f1_table = Table(
        "Fig. 11 — mean best-match F1 against ground-truth circles",
        ["network", "PCS", "ACQ", "Global", "Local"],
    )
    scores_all = {}
    for name, (pg, circles) in ego_networks.items():
        spec = EGO_SPECS[name]
        stats = pg.stats()
        stats_table.add_row(
            name.upper(),
            spec.paper_vertices,
            spec.paper_edges,
            spec.paper_avg_degree,
            spec.paper_avg_ptree,
            stats.num_vertices,
            stats.num_edges,
            round(stats.average_degree, 2),
            round(stats.average_ptree_size, 2),
        )
        assert stats.num_vertices == spec.paper_vertices
        in_circles = sorted(set().union(*circles))
        workload = make_workload(
            pg, name, num_queries=bench_queries(), k=DEFAULT_K, seed=11
        )
        queries = [q for q in workload if q in set(in_circles)] or list(workload)
        scores = {m: [] for m in ("PCS", "ACQ", "Global", "Local")}
        for q in queries:
            scores["PCS"].append(
                best_match_f1(q, [c.vertices for c in pcs(pg, q, DEFAULT_K)], circles)
            )
            scores["ACQ"].append(
                best_match_f1(q, [c.vertices for c in acq_query(pg, q, DEFAULT_K)], circles)
            )
            g = global_community_k(pg.graph, q, DEFAULT_K)
            scores["Global"].append(best_match_f1(q, [g] if g else [], circles))
            l = local_community(pg.graph, q, DEFAULT_K)
            scores["Local"].append(best_match_f1(q, [l] if l else [], circles))
        means = {
            m: (sum(v) / len(v) if v else 0.0) for m, v in scores.items()
        }
        scores_all[name] = means
        f1_table.add_row(
            name.upper(),
            *(round(means[m], 3) for m in ("PCS", "ACQ", "Global", "Local")),
        )
        # Fig. 11's claim: PCS extracts communities with the highest accuracy.
        assert means["PCS"] >= means["Global"] - 1e-9
        assert means["PCS"] >= means["Local"] - 1e-9
        assert means["PCS"] > 0.3
    stats_table.show()
    f1_table.show()
    save_tables("fig11_f1", [stats_table, f1_table], extra={"f1": scores_all})

    pg, circles = ego_networks["fb3"]
    workload = make_workload(pg, "fb3", num_queries=1, k=DEFAULT_K, seed=11)
    q = workload.queries[0]
    benchmark(lambda: pcs(pg, q, DEFAULT_K))
