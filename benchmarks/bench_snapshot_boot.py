"""Snapshot boot — warm restore vs cold graph + index construction.

The persistence PR's acceptance benchmark: booting a query-ready serving
graph from a :mod:`repro.storage` snapshot (one ``load_snapshot`` call —
decode topology, labels, taxonomy *and* adopt the serialised CP-tree)
must be ≥ 5× faster than the cold path the server otherwise takes
(regenerate/load the dataset, validate the profiled graph, peel every
per-label CL-tree from scratch).

Both paths end in the same place — identical version, topology and index
label set — which the benchmark asserts before it trusts the timings.
Records seconds per mode, the speedup and the snapshot size under
``results/snapshot_boot*.json``.

Runs two ways, exactly like the engine-throughput benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_snapshot_boot.py --smoke
    PYTHONPATH=src python benchmarks/bench_snapshot_boot.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.bench import Table, save_tables, smoke_mode
from repro.storage import load_snapshot, save_snapshot

#: Acceptance floor: snapshot load vs cold graph + index build.
MIN_BOOT_SPEEDUP = 5.0

#: Timing repeats per mode (best-of, to shed scheduler noise).
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_boot(name: str, scale: float) -> dict:
    """Cold-build vs snapshot-load timings for one dataset."""
    from repro.datasets import load_dataset

    def cold_boot():
        pg = load_dataset(name, scale=scale)
        pg.index()
        return pg

    cold_seconds = _best_of(cold_boot)
    reference = cold_boot()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot.bin"
        save_snapshot(reference, path)
        snapshot_bytes = path.stat().st_size
        load_seconds = _best_of(lambda: load_snapshot(path))
        loaded = load_snapshot(path)

    # Equivalence first, timings second: a snapshot that boots into a
    # different graph would make the speedup meaningless.
    assert loaded.version == reference.version
    assert loaded.graph.vertex_set() == reference.graph.vertex_set()
    assert loaded.num_edges == reference.num_edges
    assert set(loaded.index().labels()) == set(reference.index().labels())

    return {
        "dataset": name,
        "scale": scale,
        "num_vertices": reference.num_vertices,
        "num_edges": reference.num_edges,
        "cold_seconds": cold_seconds,
        "load_seconds": load_seconds,
        "speedup": cold_seconds / load_seconds if load_seconds else float("inf"),
        "snapshot_bytes": snapshot_bytes,
    }


def _render(payload: dict) -> Table:
    table = Table(
        "Snapshot boot — cold graph+index build vs load_snapshot",
        ["dataset", "n", "m", "cold s", "load s", "speedup", "snapshot KiB"],
    )
    for row in payload.values():
        table.add_row(
            row["dataset"],
            row["num_vertices"],
            row["num_edges"],
            round(row["cold_seconds"], 3),
            round(row["load_seconds"], 4),
            round(row["speedup"], 1),
            round(row["snapshot_bytes"] / 1024, 1),
        )
    return table


@pytest.mark.smoke
def test_snapshot_boot_speedup():
    """Snapshot load must beat the cold build by ≥ 5× on acmdl."""
    from conftest import BENCH_SCALES, bench_scale

    payload = {}
    for name in ("acmdl",):
        assert name in BENCH_SCALES
        payload[name] = measure_boot(name, bench_scale(name))
    table = _render(payload)
    table.show()
    save_tables("snapshot_boot", [table], extra={"measurements": payload})

    for name, row in payload.items():
        assert row["speedup"] >= MIN_BOOT_SPEEDUP, (
            f"{name}: snapshot load only {row['speedup']:.1f}x faster than a "
            f"cold graph+index build (need >= {MIN_BOOT_SPEEDUP}x)"
        )


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--datasets", nargs="*", default=None,
                        help="dataset names (default: acmdl)")
    parser.add_argument("--out", default=None,
                        help="results name (default snapshot_boot[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    from conftest import BENCH_SCALES, bench_scale

    names = args.datasets or ["acmdl"]
    unknown = [n for n in names if n not in BENCH_SCALES]
    if unknown:
        parser.error(f"unknown datasets {unknown}; choose from {sorted(BENCH_SCALES)}")

    payload = {name: measure_boot(name, bench_scale(name)) for name in names}
    table = _render(payload)
    table.show()
    result_name = args.out or (
        "snapshot_boot_smoke" if smoke_mode() else "snapshot_boot"
    )
    path = save_tables(result_name, [table], extra={"measurements": payload})
    print(f"\nwrote {path}")

    slow = [n for n, row in payload.items() if row["speedup"] < MIN_BOOT_SPEEDUP]
    if slow:
        print(f"FAIL: boot speedup below {MIN_BOOT_SPEEDUP}x on {slow}",
              file=sys.stderr)
        return 1
    print(f"OK: snapshot boot >= {MIN_BOOT_SPEEDUP}x faster on all datasets")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
