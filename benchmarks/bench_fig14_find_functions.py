"""Fig. 14(q–t) — comparing the initial-cut finders find-I / find-D / find-P.

Times only the cut-finding phase (Algorithms 5–7) for k = 4…8. The paper
reports find-P and find-D 10–100× faster than find-I, with find-P the most
stable, because find-I sweeps the feasible interior bottom-up while find-D
strips leaves from T(q) and find-P verifies whole root-to-leaf paths with
single index lookups.
"""

import time

from repro.bench import Table, save_tables
from repro.core import (
    FeasibilityOracle,
    find_initial_cut_decre,
    find_initial_cut_incre,
    find_initial_cut_path,
)

K_VALUES = (4, 5, 6, 7, 8)
FINDERS = {
    "find-I": find_initial_cut_incre,
    "find-D": find_initial_cut_decre,
    "find-P": find_initial_cut_path,
}


def _mean_find_ms(pg, queries, k, finder):
    total = 0.0
    for q in queries:
        oracle = FeasibilityOracle(pg, q, k, index=pg.index())
        start = time.perf_counter()
        finder(oracle)
        total += time.perf_counter() - start
    return (total / len(queries)) * 1000.0 if queries else 0.0


def test_fig14_find_functions(benchmark, datasets, workloads):
    tables = []
    payload = {}
    for name, pg in datasets.items():
        queries = list(workloads[name])
        table = Table(
            f"Fig. 14(q-t) — {name}: initial-cut time (ms) vs k",
            ["finder"] + [f"k={k}" for k in K_VALUES],
        )
        payload[name] = {}
        for label, finder in FINDERS.items():
            row = [_mean_find_ms(pg, queries, k, finder) for k in K_VALUES]
            payload[name][label] = row
            table.add_row(label, *(round(v, 3) for v in row))
        tables.append(table)
        table.show()
        # The paper's claim at the default k: find-P and find-D do not lose
        # to find-I (they skip the bottom-up interior sweep).
        at_default = {label: payload[name][label][2] for label in FINDERS}
        assert min(at_default["find-D"], at_default["find-P"]) <= at_default["find-I"] * 1.1 + 0.5
    save_tables("fig14_find_functions", tables, extra={"ms": payload})

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]

    def run():
        oracle = FeasibilityOracle(pg, q, 6, index=pg.index())
        return find_initial_cut_path(oracle)

    benchmark(run)
