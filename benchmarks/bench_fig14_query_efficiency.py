"""Fig. 14(a–d) — query efficiency of the five algorithms versus k.

The headline efficiency figure: per-query time of basic / incre / adv-I /
adv-D / adv-P for k = 4…8 on each dataset. The paper reports (Java, full
corpora): incre ≈ 100× faster than basic; adv-D / adv-P ≈ 10× faster than
incre; adv-I between incre and the other advanced methods.

We reproduce the ordering and the order-of-magnitude gaps at bench scale.
``basic``'s per-verification cost is a full scan of the k-ĉore, so it is
measured on a reduced query sample (the paper's own basic timings on DBLP
reach 10^7 ms — clearly also not averaged over all 100 queries).
"""

import os

from repro.bench import Table, save_tables, smoke_mode
from repro.core import pcs

K_VALUES = (4, 5, 6, 7, 8)
METHODS = ("basic", "incre", "adv-I", "adv-D", "adv-P")

#: basic is measured on at most this many queries per (dataset, k) cell.
BASIC_QUERY_CAP = int(os.environ.get("REPRO_BENCH_BASIC_QUERIES", "1"))


def _mean_query_ms(pg, queries, k, method):
    total = 0.0
    for q in queries:
        total += pcs(pg, q, k, method=method).elapsed_seconds
    return (total / len(queries)) * 1000.0 if queries else 0.0


def test_fig14_query_efficiency_vs_k(benchmark, datasets, workloads):
    tables = []
    payload = {}
    for name, pg in datasets.items():
        queries = list(workloads[name])
        table = Table(
            f"Fig. 14 — {name}: per-query time (ms) vs k",
            ["method"] + [f"k={k}" for k in K_VALUES],
        )
        payload[name] = {}
        for method in METHODS:
            sample = queries[:BASIC_QUERY_CAP] if method == "basic" else queries
            row = []
            for k in K_VALUES:
                row.append(_mean_query_ms(pg, sample, k, method))
            payload[name][method] = row
            table.add_row(method, *(round(v, 2) for v in row))
        tables.append(table)
        table.show()

        # The paper's ordering, asserted on a COMMON query sample (basic is
        # timed on fewer queries, so per-row numbers are not comparable).
        basic_sample = queries[:BASIC_QUERY_CAP]
        basic_ms = _mean_query_ms(pg, basic_sample, 6, "basic")
        incre_ms = _mean_query_ms(pg, basic_sample, 6, "incre")
        advp_ms = _mean_query_ms(pg, basic_sample, 6, "adv-P")
        assert min(incre_ms, advp_ms) < basic_ms
        # ...and the best advanced method beats the Apriori sweep. The margin
        # between adv-* and incre is scale-sensitive, so this ordering is only
        # asserted at calibrated bench scale — under --smoke (halved datasets,
        # 2-query samples) a single heavy query can flip it.
        if not smoke_mode():
            at_default = {m: payload[name][m][2] for m in METHODS}  # k = 6
            assert (
                min(at_default["adv-D"], at_default["adv-P"])
                <= at_default["incre"] * 1.1 + 1.0
            )

    save_tables("fig14_query_efficiency", tables, extra={"ms": payload})

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]
    benchmark(lambda: pcs(pg, q, 6, method="adv-P"))
