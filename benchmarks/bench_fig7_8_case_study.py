"""Figs. 7–8 — the Jim Gray case study (PCS finds two PCs, ACQ only one).

Reconstruction of the paper's qualitative result on the genuine ACM CCS
fragment: a researcher spanning two areas has two profiled communities —
a deep-chain theme (PC1) and a bushy multi-branch theme (PC2). ACQ, which
maximises the flat shared-label count, returns PC1 only.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "examples"))

from seminar_planning import PC1_MEMBERS, PC2_MEMBERS, QUERY, build_case_study

from repro.baselines import acq_query
from repro.bench import Table, save_tables
from repro.core import pcs


def test_fig7_8_case_study(benchmark):
    pg = build_case_study()
    pcs_result = pcs(pg, QUERY, 4)
    acq_result = acq_query(pg, QUERY, 4)

    table = Table(
        "Figs. 7-8 — case study communities of one researcher (k=4)",
        ["method", "#communities", "members", "|shared labels|", "#branches@L1"],
    )
    for label, result in (("PCS", pcs_result), ("ACQ", acq_result)):
        for community in result:
            others = sorted(community.vertices - {QUERY})
            table.add_row(
                label,
                len(result),
                ", ".join(o.split()[-1] for o in others),
                len(community.subtree),
                len(community.subtree.level_nodes(1)),
            )
    table.show()
    save_tables("fig7_8_case_study", [table])

    # PCS returns both communities; ACQ only the label-count maximiser.
    assert len(pcs_result) == 2
    assert len(acq_result) == 1
    communities = {frozenset(c.vertices) for c in pcs_result}
    assert frozenset((QUERY,) + PC1_MEMBERS) in communities
    assert frozenset((QUERY,) + PC2_MEMBERS) in communities
    assert acq_result[0].vertices == frozenset((QUERY,) + PC1_MEMBERS)
    # PC1's theme is a chain (one top-level branch); PC2's is diverse.
    pc1 = next(c for c in pcs_result if c.vertices == frozenset((QUERY,) + PC1_MEMBERS))
    pc2 = next(c for c in pcs_result if c.vertices == frozenset((QUERY,) + PC2_MEMBERS))
    assert len(pc1.subtree) > len(pc2.subtree)
    assert len(pc2.subtree.level_nodes(1)) > len(pc1.subtree.level_nodes(1))

    benchmark(lambda: pcs(pg, QUERY, 4))
