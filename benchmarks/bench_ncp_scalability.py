"""Million-vertex NCP sweep — CSR backend vs object backend.

The CSR PR's acceptance benchmark. A network-community-profile sweep in
the style of Leskovec et al. (arXiv:0810.1355) is the canonical
peel-dominated workload: one full core decomposition, then for every
``k`` up to the degeneracy the size of the ``k``-core and the connected
``k``-core communities of deterministic query vertices. At full scale the
sweep runs over a scale-free graph with **one million vertices** (the
paper-scale stress the object backend was never sized for); under
``REPRO_BENCH_SMOKE`` the graph shrinks so CI finishes in seconds.

The same sweep runs under the ``object`` backend and the ``csr`` backend
(plus ``numpy`` when installed, reported but not gated). Answers —
core sizes and every community — are asserted identical **before** any
timing is trusted; the CI gate then requires the CSR backend to be at
least :data:`MIN_NCP_SPEEDUP`× faster cold (the CSR build is inside the
timed region). Below :data:`MIN_GATE_VERTICES` vertices timings are
noise, so the gate skips — loudly — instead of asserting.

Records per-backend seconds, the speedup and the per-``k`` profile under
``results/ncp_scalability*.json``. Runs two ways, exactly like the other
benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_ncp_scalability.py --smoke
    PYTHONPATH=src python benchmarks/bench_ncp_scalability.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

from repro.bench import Table, save_tables, smoke_mode
from repro.graph import Graph, core_numbers, k_core_within, preferential_attachment_graph
from repro.graph.csr import backend_override, numpy_available

#: Acceptance floor: CSR sweep vs object sweep on identical queries.
MIN_NCP_SPEEDUP = 3.0

#: Below this many vertices the timings are scheduler noise — the gate
#: skips (loudly) rather than asserting on a meaningless ratio.
MIN_GATE_VERTICES = 5_000

#: Vertex counts: paper-scale stress vs the CI fast path.
FULL_VERTICES = 1_000_000
SMOKE_VERTICES = 20_000

#: Attachments per vertex — also the graph's degeneracy, i.e. the number
#: of points on the NCP profile.
ATTACH = 5

#: Deterministic queries per k: the smallest and largest member ids.
QUERIES_PER_K = 2

#: The one fixed seed: both backends must see the identical graph.
SEED = 20190116


def sweep_vertices() -> int:
    """Effective vertex count (env override > smoke default > full)."""
    override = os.environ.get("REPRO_NCP_VERTICES")
    if override:
        return int(override)
    return SMOKE_VERTICES if smoke_mode() else FULL_VERTICES


def build_graph(n: int):
    """The scale-free subject graph (~``ATTACH * n`` edges), string ids.

    Vertices are relabelled ``u0000042``-style: real networks key vertices
    by strings (author names, user ids), which is precisely the case the
    CSR intern table exists for — the object backend hashes a string per
    edge visit, the CSR kernels hash each id exactly once. Zero-padding
    keeps lexicographic order equal to numeric order, so the deterministic
    min/max query picks are scale-stable.
    """
    width = len(str(n - 1))
    base = preferential_attachment_graph(n, ATTACH, seed=SEED)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(f"u{v:0{width}d}")
    for u, v in base.edges():
        graph.add_edge(f"u{u:0{width}d}", f"u{v:0{width}d}")
    return graph


def ncp_sweep(graph):
    """One full NCP sweep; returns comparable rows.

    Each row is ``(k, core_size, (community, ...))`` with communities as
    frozensets — directly comparable across backends. Queries are the
    smallest/largest member ids, so they never depend on dict iteration
    order (which *does* differ between backends).
    """
    cores = core_numbers(graph)
    members = list(cores)
    rows = []
    for k in range(1, max(cores.values(), default=0) + 1):
        members = [v for v in members if cores[v] >= k]
        if not members:
            break
        queries = sorted({min(members), max(members)})[:QUERIES_PER_K]
        communities = tuple(
            frozenset(k_core_within(graph, members, k, q=q)) for q in queries
        )
        rows.append((k, len(members), communities))
    return rows


def _timed_sweep(graph, backend):
    """(seconds, rows) for one cold sweep under ``backend``."""
    with backend_override(backend):
        graph._csr = None  # cold: the CSR build is part of the query cost
        start = time.perf_counter()
        rows = ncp_sweep(graph)
        return time.perf_counter() - start, rows


def measure(n: int) -> dict:
    """Build one graph, sweep it under every backend, compare, time."""
    graph = build_graph(n)
    backends = ["object", "csr"] + (["numpy"] if numpy_available() else [])
    seconds = {}
    reference = None
    for backend in backends:
        best = float("inf")
        rows = None
        for _ in range(2 if smoke_mode() else 1):
            elapsed, rows = _timed_sweep(graph, backend)
            best = min(best, elapsed)
        seconds[backend] = best
        # Equivalence first, timings second: a backend that answers
        # differently would make its speedup meaningless.
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"{backend} diverged from object answers"

    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "profile": [
            {"k": k, "core_size": size, "community_sizes": [len(c) for c in comms]}
            for k, size, comms in reference
        ],
        "seconds": seconds,
        "speedup": seconds["object"] / seconds["csr"] if seconds["csr"] else float("inf"),
    }


def _render(payload: dict) -> Table:
    table = Table(
        "NCP sweep — object vs CSR backend (identical answers asserted)",
        ["n", "m", "profile points", "object s", "csr s", "numpy s", "speedup"],
    )
    table.add_row(
        payload["num_vertices"],
        payload["num_edges"],
        len(payload["profile"]),
        round(payload["seconds"]["object"], 3),
        round(payload["seconds"]["csr"], 3),
        round(payload["seconds"]["numpy"], 3) if "numpy" in payload["seconds"] else "-",
        round(payload["speedup"], 1),
    )
    return table


@pytest.mark.smoke
def test_ncp_sweep_speedup():
    """CSR must beat the object backend by ≥ 3× on the cold NCP sweep."""
    n = sweep_vertices()
    payload = measure(n)
    table = _render(payload)
    table.show()
    save_tables("ncp_scalability", [table], extra={"measurements": payload})

    if n < MIN_GATE_VERTICES:
        pytest.skip(
            f"SCALE TOO SMALL FOR THE GATE: {n} < {MIN_GATE_VERTICES} vertices "
            "— timings recorded but the speedup assertion is skipped"
        )
    assert payload["speedup"] >= MIN_NCP_SPEEDUP, (
        f"CSR sweep only {payload['speedup']:.1f}x faster than the object "
        f"backend at n={n} (need >= {MIN_NCP_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--vertices", type=int, default=None,
                        help="override the swept vertex count")
    parser.add_argument("--out", default=None,
                        help="results name (default ncp_scalability[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    if args.vertices:
        os.environ["REPRO_NCP_VERTICES"] = str(args.vertices)

    n = sweep_vertices()
    payload = measure(n)
    table = _render(payload)
    table.show()
    result_name = args.out or (
        "ncp_scalability_smoke" if smoke_mode() else "ncp_scalability"
    )
    path = save_tables(result_name, [table], extra={"measurements": payload})
    print(f"\nwrote {path}")

    if n < MIN_GATE_VERTICES:
        print(
            f"SKIP: n={n} is below the {MIN_GATE_VERTICES}-vertex floor — "
            "speedup recorded but not gated",
            file=sys.stderr,
        )
        return 0
    if payload["speedup"] < MIN_NCP_SPEEDUP:
        print(
            f"FAIL: CSR sweep speedup {payload['speedup']:.1f}x below "
            f"{MIN_NCP_SPEEDUP}x at n={n}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: CSR sweep >= {MIN_NCP_SPEEDUP}x faster at n={n}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
