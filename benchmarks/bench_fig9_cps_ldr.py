"""Fig. 9 — community quality: CPS (Eq. 2) and LDR (Eq. 3).

Reproduces the paper's effectiveness comparison:

* Fig. 9(a) CPS — P-ACs (communities found by both PCS and ACQ) score
  highest; PCs* (communities only PCS finds) score close to them; Global
  and Local, which ignore profiles entirely, score lowest.
* Fig. 9(b) LDR — ACQ's communities cover only a fraction (the paper
  reports 40–60%) of PCS's per-level label diversity.
"""

from repro.baselines import acq_query, global_community_k, local_community
from repro.bench import Table, save_tables
from repro.core import pcs
from repro.metrics import community_pairwise_similarity, level_diversity_ratio

from conftest import DEFAULT_K


def _collect(pg, queries):
    """Per-method communities for one dataset's workload."""
    per_method = {"PCs*": [], "P-ACs": [], "ACQ": [], "Global": [], "Local": []}
    ldr_inputs = []
    for q in queries:
        pcs_result = list(pcs(pg, q, DEFAULT_K))
        acq_result = list(acq_query(pg, q, DEFAULT_K))
        acq_sets = {c.vertices for c in acq_result}
        both = [c.vertices for c in pcs_result if c.vertices in acq_sets]
        only_pcs = [c.vertices for c in pcs_result if c.vertices not in acq_sets]
        per_method["P-ACs"].extend(both)
        per_method["PCs*"].extend(only_pcs)
        per_method["ACQ"].extend(acq_sets)
        g = global_community_k(pg.graph, q, DEFAULT_K)
        if g:
            per_method["Global"].append(g)
        l = local_community(pg.graph, q, DEFAULT_K)
        if l:
            per_method["Local"].append(l)
        ldr_inputs.append((q, acq_result, pcs_result))
    return per_method, ldr_inputs


def test_fig9_cps_and_ldr(benchmark, datasets, workloads):
    cps_table = Table(
        "Fig. 9(a) — CPS per method (higher = more profile-cohesive)",
        ["dataset", "PCs*", "P-ACs", "ACQ", "Global", "Local"],
    )
    ldr_table = Table(
        "Fig. 9(b) — LDR of ACQ relative to PCS (1.0 = same diversity)",
        ["dataset", "LDR(ACQ)"],
    )
    cps_values = {}
    for name, pg in datasets.items():
        per_method, ldr_inputs = _collect(pg, workloads[name])
        row = [name]
        cps_values[name] = {}
        for method in ("PCs*", "P-ACs", "ACQ", "Global", "Local"):
            value = community_pairwise_similarity(pg, per_method[method])
            cps_values[name][method] = value
            row.append(round(value, 3))
        cps_table.add_row(*row)
        ldrs = [
            level_diversity_ratio(pg, q, acq_res, pcs_res)
            for q, acq_res, pcs_res in ldr_inputs
            if pcs_res
        ]
        ldr = sum(ldrs) / len(ldrs) if ldrs else 0.0
        ldr_table.add_row(name, round(ldr, 3))
        # Shape assertions (the paper's qualitative claims).
        profile_aware = max(cps_values[name]["P-ACs"], cps_values[name]["PCs*"])
        for topology_only in ("Global", "Local"):
            if per_method[topology_only]:
                assert profile_aware >= cps_values[name][topology_only] - 1e-9
        assert 0.0 < ldr <= 1.0 + 1e-9
    cps_table.show()
    ldr_table.show()
    save_tables("fig9_cps_ldr", [cps_table, ldr_table], extra={"cps": cps_values})

    pg = datasets["acmdl"]
    q = workloads["acmdl"].queries[0]
    benchmark(lambda: community_pairwise_similarity(pg, [c.vertices for c in pcs(pg, q, DEFAULT_K)]))
