"""Standing subscriptions — re-evaluation selectivity and push latency.

The continuous-query PR's acceptance benchmark. A **label-partitioned**
workload is the shape the dirty-label matcher exists for: ``P`` disjoint
clique communities, each themed with its own taxonomy branch, one
standing subscription watching each. Every edit batch churns a vertex in
exactly one partition, so a perfect matcher re-evaluates exactly one of
``P`` subscriptions per batch (selectivity ``1/P``) and a naive one
re-runs all of them (selectivity 1.0 — what the root label would cause
without the footprint refinement in :mod:`repro.subscribe.matcher`).

Asserted:

* **correctness first** — every pushed diff, composed onto the
  subscriber's running membership, equals a full recompute of the
  standing query at the diff's ``graph_version``; the timing below is
  meaningless if the short-circuit changes answers, so this runs before
  the gates;
* **selectivity** — re-evaluations per batch ≤ :data:`MAX_SELECTIVITY`
  of registered subscriptions (the ISSUE's ≤0.5 acceptance floor; the
  expected value here is ``1/P``);
* **push latency** — p95 from the moment a writer submits a batch to the
  moment the affected subscriber *holds* the diff (consumer dequeue,
  crossing the engine hook and the bounded queue) stays under
  :data:`MAX_P95_PUSH_MS`.

Reported: selectivity, re-evaluations/batch, p50/p95 push latency, diffs
verified. JSON artifact lands in ``results/subscription_latency*.json``.

Runs two ways, like the other acceptance benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_subscription_latency.py --smoke
    PYTHONPATH=src python benchmarks/bench_subscription_latency.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import pytest

from repro.api import CommunityService, Subscription
from repro.bench import Table, save_tables, smoke_mode
from repro.core.profiled_graph import ProfiledGraph
from repro.graph import Graph
from repro.ptree import Taxonomy
from repro.subscribe import SubscriptionManager

#: Acceptance ceiling on matcher selectivity (fraction of subscriptions
#: re-evaluated per batch). The partitioned workload's ideal is 1/P.
MAX_SELECTIVITY = 0.5

#: Acceptance ceiling on p95 writer-to-subscriber push latency. Pure
#: Python re-evaluating one clique community: generous on any CI host.
MAX_P95_PUSH_MS = 500.0

#: Community size per partition (a clique; k=2 keeps it cohesive under
#: single-vertex churn).
CLIQUE = 4

K = 2


def partitions() -> int:
    return 4 if smoke_mode() else 8

def churn_rounds() -> int:
    return 12 if smoke_mode() else 48


def build_partitioned_graph(num_partitions: int) -> ProfiledGraph:
    """``P`` disjoint cliques, partition ``i`` themed with label ``Pi``."""
    tax = Taxonomy(root_name="r")
    for i in range(num_partitions):
        tax.add(f"P{i}")
    edges = []
    profiles = {}
    for i in range(num_partitions):
        members = [f"v{i}_{j}" for j in range(CLIQUE)]
        for a in range(CLIQUE):
            for b in range(a + 1, CLIQUE):
                edges.append((members[a], members[b]))
        for m in members:
            profiles[m] = (f"P{i}",)
    return ProfiledGraph(Graph(edges), tax, profiles)


def _recompute(service: CommunityService, sub: Subscription) -> frozenset:
    result = service.explorer.explore(sub.vertex, k=sub.k)
    members: set = set()
    for community in result.communities:
        members |= community.vertices
    return frozenset(members)


class _Receiver(threading.Thread):
    """Drains one subscription's consumer, timestamping every dequeue."""

    def __init__(self, manager: SubscriptionManager, sub_id: str) -> None:
        super().__init__(name=f"receiver-{sub_id[:6]}", daemon=True)
        self.consumer = manager.consumer(sub_id, last_event_id=1)
        self.received = []  # (CommunityDiff, perf_counter at dequeue)
        self.start()

    def run(self) -> None:
        while True:
            batch = self.consumer.next_batch(timeout=1.0)
            if batch is None:
                return
            now = time.perf_counter()
            for diff in batch:
                self.received.append((diff, now))


def measure(num_partitions: int, rounds: int) -> dict:
    pg = build_partitioned_graph(num_partitions)
    service = CommunityService(pg, default_k=K, cache_size=None)
    manager = SubscriptionManager(service, event_log_size=rounds + 8)
    subs = []
    try:
        for i in range(num_partitions):
            sub = Subscription.new(f"v{i}_0", k=K)
            manager.register(sub)
            subs.append(sub)
        receivers = [_Receiver(manager, sub.id) for sub in subs]
        composed = {
            sub.id: frozenset(manager.members(sub.id)) for sub in subs
        }

        push_latencies = []
        verified = 0
        for round_no in range(rounds):
            target = round_no % num_partitions
            churn = f"churn{target}"
            if (round_no // num_partitions) % 2 == 0:
                batch = [
                    {"op": "add_vertex", "u": churn, "labels": [f"P{target}"]},
                ] + [
                    {"op": "add_edge", "u": churn, "v": f"v{target}_{j}"}
                    for j in range(CLIQUE - 1)
                ]
            else:
                batch = [{"op": "remove_vertex", "u": churn}]
            receiver = receivers[target]
            already = len(receiver.received)
            t0 = time.perf_counter()
            service.apply_updates(batch)
            # The churn always changes the target partition's watched set,
            # so its subscriber must receive exactly one new diff.
            deadline = time.monotonic() + 10.0
            while len(receiver.received) <= already:
                if time.monotonic() > deadline:  # pragma: no cover - hang guard
                    raise AssertionError(
                        f"round {round_no}: diff never reached the subscriber"
                    )
                time.sleep(0.0005)
            diff, received_at = receiver.received[already]
            push_latencies.append((received_at - t0) * 1000.0)

            # Trust nothing until the diff equals a full recompute at the
            # version it claims — the graph only moves on this thread, so
            # the engine still sits at diff.graph_version right now.
            assert diff.graph_version == service.pg.version
            sub = subs[target]
            composed[sub.id] = diff.apply_to(composed[sub.id])
            assert composed[sub.id] == _recompute(service, sub), (
                f"round {round_no}: composed diff diverges from full "
                f"recompute at version {diff.graph_version}"
            )
            verified += 1

        # Untouched subscriptions must still be exact (they were skipped,
        # not forgotten) — and nobody received a diff they shouldn't have.
        for sub in subs:
            assert manager.members(sub.id) == _recompute(service, sub)
        total_diffs = sum(len(r.received) for r in receivers)
        assert total_diffs == rounds, (
            f"expected one diff per churn round, saw {total_diffs}"
        )

        stats = manager.stats()
        matcher = stats["matcher"]
        push_latencies.sort()

        def pct(fraction: float) -> float:
            index = min(len(push_latencies) - 1, int(fraction * len(push_latencies)))
            return push_latencies[index]

        return {
            "partitions": num_partitions,
            "subscriptions": len(subs),
            "rounds": rounds,
            "reevaluations": stats["reevaluations"],
            "reevaluations_per_batch": stats["reevaluations"] / rounds,
            "selectivity": matcher["selectivity"],
            "ideal_selectivity": 1.0 / num_partitions,
            "diffs_verified": verified,
            "p50_push_ms": pct(0.50),
            "p95_push_ms": pct(0.95),
            "max_push_ms": push_latencies[-1],
        }
    finally:
        manager.close()
        service.close()


def _render(report: dict) -> Table:
    table = Table(
        "Standing subscriptions — dirty-label selectivity and push latency "
        f"({report['partitions']} label partitions)",
        ["subs", "rounds", "re-evals/batch", "selectivity",
         "p50 push ms", "p95 push ms", "diffs verified"],
    )
    table.add_row(
        report["subscriptions"],
        report["rounds"],
        round(report["reevaluations_per_batch"], 2),
        round(report["selectivity"], 4),
        round(report["p50_push_ms"], 2),
        round(report["p95_push_ms"], 2),
        report["diffs_verified"],
    )
    return table


def _check(report: dict) -> list:
    failures = []
    if report["diffs_verified"] != report["rounds"]:
        failures.append(
            f"only {report['diffs_verified']}/{report['rounds']} pushed "
            f"diffs were verified against a full recompute"
        )
    if report["selectivity"] > MAX_SELECTIVITY:
        failures.append(
            f"matcher re-evaluated {report['selectivity']:.2%} of "
            f"subscriptions per batch (gate ≤ {MAX_SELECTIVITY:.0%}; the "
            f"partitioned ideal is {report['ideal_selectivity']:.2%})"
        )
    if report["p95_push_ms"] > MAX_P95_PUSH_MS:
        failures.append(
            f"p95 push latency {report['p95_push_ms']:.1f} ms exceeds "
            f"{MAX_P95_PUSH_MS:.0f} ms"
        )
    return failures


@pytest.mark.smoke
@pytest.mark.subscriptions
def test_subscription_latency():
    """Selectivity ≤ 0.5 and bounded push latency, every diff verified."""
    report = measure(partitions(), churn_rounds())
    table = _render(report)
    table.show()
    name = "subscription_latency_smoke" if smoke_mode() else "subscription_latency"
    save_tables(name, [table], extra={"measurements": report})
    failures = _check(report)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke job)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI fast path")
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="results name (default subscription_latency[_smoke])")
    args = parser.parse_args(argv)

    if args.smoke:
        import os

        os.environ["REPRO_BENCH_SMOKE"] = "1"

    report = measure(
        args.partitions or partitions(), args.rounds or churn_rounds()
    )
    table = _render(report)
    table.show()
    name = args.out or (
        "subscription_latency_smoke" if smoke_mode() else "subscription_latency"
    )
    path = save_tables(name, [table], extra={"measurements": report})
    print(f"\nwrote {path}")

    failures = _check(report)
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"OK: selectivity {report['selectivity']:.2%} "
        f"(ideal {report['ideal_selectivity']:.2%}), "
        f"p95 push {report['p95_push_ms']:.1f} ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
