"""Line-coverage baseline measurement without external tooling.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=N``); this
script exists for environments without ``pytest-cov`` — it reproduces the
same measurement closely enough to *pin* N: a ``sys.settrace`` line tracer
over ``src/repro`` during a full test run, divided by the executable-line
count from each module's compiled code objects.

Differences vs coverage.py are conservative: ``# pragma: no cover`` lines
are *counted* here (coverage.py excludes them), so this script reports a
slightly lower percentage than CI will — a fail-under pinned from this
number can only be loose, never flaky-tight.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import dis
import os
import sys
import threading
import types

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

_executed: dict = {}


def _local_tracer_for(lines: set):
    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    return local


def _tracer(frame, event, arg):
    if event != "call":
        return None
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    lines = _executed.setdefault(filename, set())
    lines.add(frame.f_lineno)
    return _local_tracer_for(lines)


def executable_lines(path: str) -> set:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: set = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(
            lineno for _, lineno in dis.findlinestarts(code) if lineno is not None
        )
        stack.extend(
            const for const in code.co_consts if isinstance(const, types.CodeType)
        )
    return lines


def main(argv) -> int:
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    rc = pytest.main(argv or ["tests", "-q", "-p", "no:cacheprovider"])
    sys.settrace(None)
    threading.settrace(None)
    if rc != 0:
        print(f"test run failed (exit {rc}); coverage numbers unreliable")
        return rc

    total_exec = total_hit = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            possible = executable_lines(path)
            hit = _executed.get(path, set()) & possible
            total_exec += len(possible)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(possible) if possible else 100.0
            rows.append((pct, os.path.relpath(path, ROOT), len(hit), len(possible)))

    rows.sort()
    print(f"\n{'file':60s} {'hit':>6s} {'exec':>6s} {'%':>7s}")
    for pct, rel, hit, possible in rows:
        print(f"{rel:60s} {hit:6d} {possible:6d} {pct:6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL: {total_hit}/{total_exec} lines = {overall:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
