#!/usr/bin/env python3
"""Docstring-coverage gate for the public surface of ``src/repro``.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so it
is fast and side-effect free) and counts docstrings on the *public*
surface:

* module docstrings;
* public classes (name not starting with ``_``);
* public functions and public-class methods (dunders other than
  ``__init__`` are exempt — they are documented by their protocol; private
  names and anything nested inside a function body are skipped).

The gate is **baseline-or-better**: the suite fails when coverage drops
below :data:`BASELINE_PERCENT`, which is pinned from a measured value.
When coverage grows, raise the pin (``--measure`` prints the current
number); never lower it to make a change pass. Wired into the CI lint job
and into ``tests/test_docs.py`` so it also runs under tier-1.

Usage::

    python scripts/check_docstrings.py             # gate at the baseline
    python scripts/check_docstrings.py --missing   # list undocumented items
    python scripts/check_docstrings.py --measure   # print coverage only
    python scripts/check_docstrings.py --min 95.0  # explicit threshold
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: The pinned gate (percent). Measured 100.0 at the serving PR; keep the
#: pin slightly below so a single new helper module cannot flake CI, and
#: raise it as the measured number allows. Never lower it to make a PR
#: pass.
BASELINE_PERCENT = 99.0

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_") or name == "__init__"


def _iter_items(path: Path) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for one module's surface."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    module_name = str(path.relative_to(SRC.parent)).replace("/", ".")[: -len(".py")]
    yield module_name, ast.get_docstring(tree) is not None

    def walk(nodes, prefix: str, in_class: bool) -> Iterator[Tuple[str, bool]]:
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                qualname = f"{prefix}.{node.name}"
                yield qualname, ast.get_docstring(node) is not None
                yield from walk(node.body, qualname, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(node.name):
                    continue
                if node.name.startswith("__") and node.name != "__init__":
                    continue  # non-init dunders are protocol-documented
                if node.name == "__init__" and in_class:
                    # An __init__ is covered when it *or* its class
                    # documents the parameters (numpydoc style puts them on
                    # the class); only count it when it has a body beyond
                    # defaults worth documenting — keep it simple: exempt.
                    continue
                has_doc = ast.get_docstring(node) is not None
                if not has_doc and in_class and _is_trivial_override(node):
                    continue  # e.g. a pass-through hook with no new contract
                yield f"{prefix}.{node.name}", has_doc
                # Nested defs are implementation detail: do not recurse.

    yield from walk(tree.body, module_name, in_class=False)


def _is_trivial_override(node: ast.FunctionDef) -> bool:
    """A body of at most one simple statement (``pass``/``...``/return)."""
    body = [n for n in node.body if not isinstance(n, ast.Expr) or not isinstance(
        n.value, ast.Constant
    )]
    return len(body) <= 1 and all(
        isinstance(n, (ast.Pass, ast.Return, ast.Raise)) for n in body
    )


def collect(src: Path = SRC) -> List[Tuple[str, bool]]:
    """All ``(item, documented)`` pairs across the package, sorted."""
    items: List[Tuple[str, bool]] = []
    for path in sorted(src.rglob("*.py")):
        items.extend(_iter_items(path))
    return items


def coverage_percent(items: List[Tuple[str, bool]]) -> float:
    if not items:
        return 100.0
    return 100.0 * sum(1 for _, ok in items if ok) / len(items)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min", type=float, default=BASELINE_PERCENT,
                        help=f"fail below this percent (default {BASELINE_PERCENT})")
    parser.add_argument("--missing", action="store_true",
                        help="list undocumented public items")
    parser.add_argument("--measure", action="store_true",
                        help="print the coverage number and exit 0")
    args = parser.parse_args(argv)

    items = collect()
    percent = coverage_percent(items)
    missing = [name for name, ok in items if not ok]
    print(f"docstring coverage: {percent:.2f}% "
          f"({len(items) - len(missing)}/{len(items)} public items)")
    if args.missing or (percent < args.min and missing):
        for name in missing:
            print(f"  missing: {name}")
    if args.measure:
        return 0
    if percent < args.min:
        print(f"FAIL: below the {args.min:.2f}% gate "
              f"(document the items above, or justify lowering the pin)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
