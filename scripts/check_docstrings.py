#!/usr/bin/env python3
"""Docstring-coverage gate for the public surface of ``src/repro``.

Since the lint framework landed, this script is a **thin wrapper** over
the ``docstring-coverage`` checker in :mod:`repro.lint` — one rule set,
two presentations. The checker (run via ``repro lint``) reports each
undocumented public item as a finding and gates at exactly zero; this
wrapper keeps the historical percentage interface for CI and for humans:

* module docstrings;
* public classes (name not starting with ``_``);
* public functions and public-class methods (dunders other than
  ``__init__`` are exempt — they are documented by their protocol;
  private names and anything nested inside a function body are skipped).

The gate is **baseline-or-better**: the suite fails when coverage drops
below :data:`BASELINE_PERCENT`, which is pinned from a measured value.
When coverage grows, raise the pin (``--measure`` prints the current
number); never lower it to make a change pass. Wired into the CI lint
job (via ``repro lint --ci``) and into ``tests/test_docs.py`` so it
also runs under tier-1.

Usage::

    python scripts/check_docstrings.py             # gate at the baseline
    python scripts/check_docstrings.py --missing   # list undocumented items
    python scripts/check_docstrings.py --measure   # print coverage only
    python scripts/check_docstrings.py --min 95.0  # explicit threshold
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Tuple

#: The pinned gate (percent). Measured 100.0 at the serving PR; keep the
#: pin slightly below so a single new helper module cannot flake CI, and
#: raise it as the measured number allows. Never lower it to make a PR
#: pass.
BASELINE_PERCENT = 99.0

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src" / "repro"

# The wrapper must work when invoked as a plain script (CI calls it
# without PYTHONPATH); repro.lint is stdlib-only so this import is safe
# from any interpreter state.
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def collect(src: Path = SRC) -> List[Tuple[str, bool]]:
    """All ``(item, documented)`` pairs across the package, sorted.

    Delegates to :func:`repro.lint.checkers.docstrings.iter_items` so
    this script and ``repro lint`` can never disagree about the rules.
    """
    from repro.lint.checkers.docstrings import iter_items
    from repro.lint.project import load_modules

    items: List[Tuple[str, bool]] = []
    for module in load_modules([src], base=ROOT):
        items.extend(
            (qualname, documented) for qualname, documented, _ in iter_items(module)
        )
    return items


def coverage_percent(items: List[Tuple[str, bool]]) -> float:
    """Documented fraction of ``items`` as a percentage (100.0 if empty)."""
    if not items:
        return 100.0
    return 100.0 * sum(1 for _, ok in items if ok) / len(items)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min", type=float, default=BASELINE_PERCENT,
                        help=f"fail below this percent (default {BASELINE_PERCENT})")
    parser.add_argument("--missing", action="store_true",
                        help="list undocumented public items")
    parser.add_argument("--measure", action="store_true",
                        help="print the coverage number and exit 0")
    args = parser.parse_args(argv)

    items = collect()
    percent = coverage_percent(items)
    missing = [name for name, ok in items if not ok]
    print(f"docstring coverage: {percent:.2f}% "
          f"({len(items) - len(missing)}/{len(items)} public items)")
    if args.missing or (percent < args.min and missing):
        for name in missing:
            print(f"  missing: {name}")
    if args.measure:
        return 0
    if percent < args.min:
        print(f"FAIL: below the {args.min:.2f}% gate "
              f"(document the items above, or justify lowering the pin)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
